/**
 * @file
 * Run-lifecycle hardening tests: cooperative cancellation, wall-clock
 * budgets, transient-failure retry, the write-ahead campaign journal,
 * and the protocol-abuse / overload behaviour of the serve loop. This
 * is the chaos suite: everything here is about a run (or a daemon)
 * being interrupted, starved, or fed garbage and the system degrading
 * into structured errors instead of hangs, crashes, or corrupt
 * output. Runs under the TSan sweep preset: the cancel and cancel-cmd
 * scenarios exercise real cross-thread token trips.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/journal.hh"
#include "serve/serve.hh"
#include "sim/cancel.hh"
#include "sim/error.hh"
#include "sim/json.hh"
#include "sim/sweep.hh"
#include "system/runspec.hh"

namespace vip {
namespace {

/// The dot product serve_test pins: a short, clean-halting run with a
/// nontrivial result.
const char *kDotProduct = R"(
    mov.imm r1, 8
    set.vl r1
    mov.imm r2, 1
    set.mr r2
    mov.imm r10, 0x1000
    mov.imm r11, 0x1100
    mov.imm r12, 0x2000
    mov.imm r20, 0
    mov.imm r21, 64
    mov.imm r22, 128
    ld.sram[16] r20, r10, r1
    ld.sram[16] r21, r11, r1
    m.v.mul.add[16] r22, r20, r21
    v.drain
    st.sram[16] r22, r12, r2
    memfence
    halt
)";

/// An infinite loop that keeps making progress: the watchdog never
/// fires (instructions retire every cycle) and the machine never
/// halts — the shape only a budget or a cancel can stop.
const char *kSpinForever = R"(
    mov.imm r1, 0
spin:
    add.imm r1, r1, 1
    beq r2, r2, spin
)";

RunSpec
dotSpec()
{
    RunSpec spec;
    spec.config = makeSystemConfig(2, 2);
    spec.programs.push_back({0, kDotProduct});
    spec.pokes.push_back({0x1000, {2, 3, 5, 7, 11, 13, 17, 19}});
    spec.pokes.push_back({0x1100, {1, 2, 3, 4, 5, 6, 7, 8}});
    spec.maxCycles = 200'000;
    return spec;
}

RunSpec
spinSpec()
{
    RunSpec spec;
    spec.config = makeSystemConfig(2, 2);
    spec.programs.push_back({0, kSpinForever});
    // Large enough that only the token can stop the run within the
    // test timeout; small enough to bound a failure mode.
    spec.maxCycles = 2'000'000'000;
    return spec;
}

std::string
runRequestLine(const RunSpec &spec)
{
    Json req = Json::object();
    req.set("run", spec.toJson());
    return req.str() + "\n";
}

std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (;;) {
        const std::size_t nl = text.find('\n', start);
        if (nl == std::string::npos)
            break;
        out.push_back(text.substr(start, nl - start));
        start = nl + 1;
    }
    return out;
}

std::vector<std::string>
serveLines(VipServer &server, const std::string &requests)
{
    std::istringstream in(requests);
    std::ostringstream out;
    server.serve(in, out);
    return lines(out.str());
}

/// The "kind" of an {"error": ...} response line ("" when the line is
/// not an error).
std::string
errorKind(const std::string &line)
{
    const Json j = Json::parse(line);
    const Json *err = j.find("error");
    return err ? err->at("kind").asString() : std::string{};
}

std::string
tempPath(const std::string &name)
{
    const std::string path = ::testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

// ---- CancelToken ----------------------------------------------------

TEST(CancelToken, CancelIsStickyAndThrowsCancelled)
{
    CancelToken tok;
    EXPECT_FALSE(tok.cancelled());
    EXPECT_FALSE(tok.shouldStop());
    EXPECT_NO_THROW(tok.check());
    tok.cancel();
    tok.cancel();  // idempotent
    EXPECT_TRUE(tok.cancelled());
    EXPECT_TRUE(tok.shouldStop());
    EXPECT_THROW(tok.check(), CancelledError);
}

TEST(CancelToken, BudgetArmsDisarmsAndExpires)
{
    CancelToken tok;
    EXPECT_FALSE(tok.hasDeadline());
    tok.setBudgetMs(1);
    EXPECT_TRUE(tok.hasDeadline());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_TRUE(tok.expired());
    EXPECT_THROW(tok.check(), TimeoutError);
    tok.setBudgetMs(0);  // disarm
    EXPECT_FALSE(tok.hasDeadline());
    EXPECT_FALSE(tok.expired());
    EXPECT_NO_THROW(tok.check());
}

TEST(CancelToken, CancelWinsOverExpiredBudget)
{
    CancelToken tok;
    tok.setBudgetMs(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    tok.cancel();
    EXPECT_THROW(tok.check(), CancelledError);
}

// ---- Cancellation & budgets through the run path --------------------

TEST(Cancel, SerialRunStopsOnCancelledToken)
{
    CancelToken tok;
    tok.cancel();
    EXPECT_THROW(runSpec(spinSpec(), &tok), CancelledError);
}

TEST(Cancel, IslandRunStopsOnCancelledToken)
{
    RunSpec spec = spinSpec();
    spec.config.islands = 2;
    CancelToken tok;
    tok.cancel();
    EXPECT_THROW(runSpec(spec, &tok), CancelledError);
}

TEST(Cancel, CancelFromAnotherThreadStopsTheRun)
{
    CancelToken tok;
    std::thread canceller([&tok] {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        tok.cancel();
    });
    EXPECT_THROW(runSpec(spinSpec(), &tok), CancelledError);
    canceller.join();
}

TEST(Budget, SerialRunTimesOut)
{
    RunSpec spec = spinSpec();
    spec.budgetMs = 30;
    try {
        runSpec(spec);
        FAIL() << "the spin never halts; only the budget can stop it";
    } catch (const TimeoutError &e) {
        EXPECT_EQ(e.kind(), "timeout");
    }
}

TEST(Budget, IslandRunTimesOut)
{
    RunSpec spec = spinSpec();
    spec.config.islands = 2;
    spec.budgetMs = 30;
    EXPECT_THROW(runSpec(spec), TimeoutError);
}

TEST(Budget, RunWithinBudgetMatchesUnbudgetedRun)
{
    const RunSpec plain = dotSpec();
    RunSpec budgeted = dotSpec();
    budgeted.budgetMs = 60'000;
    EXPECT_EQ(runSpec(plain).toJson().str(),
              runSpec(budgeted).toJson().str());
}

TEST(Budget, ExcludedFromFingerprintButNotEquality)
{
    const RunSpec plain = dotSpec();
    RunSpec budgeted = dotSpec();
    budgeted.budgetMs = 500;
    EXPECT_EQ(plain.fingerprint(), budgeted.fingerprint());
    EXPECT_FALSE(plain == budgeted);
    // And the budget round-trips through the wire form.
    const RunSpec back =
        RunSpec::fromJson(Json::parse(budgeted.toJson().str()));
    EXPECT_TRUE(back == budgeted);
    // ...while the unbudgeted form omits the key entirely, keeping
    // pre-budget fingerprints unchanged.
    EXPECT_EQ(plain.toJson().find("budgetMs"), nullptr);
}

// ---- Serve: budgets, cancel command, admission, abuse ---------------

TEST(ServeLifecycle, TimeoutIsStructuredAndDaemonKeepsServing)
{
    RunSpec spin = spinSpec();
    spin.budgetMs = 50;
    VipServer server;
    const auto responses =
        serveLines(server, runRequestLine(spin) + runRequestLine(dotSpec()));
    ASSERT_EQ(responses.size(), 2u);
    EXPECT_EQ(errorKind(responses[0]), "timeout");
    EXPECT_EQ(errorKind(responses[1]), "");
    EXPECT_NE(Json::parse(responses[1]).find("key"), nullptr);
    EXPECT_EQ(server.timeouts(), 1u);
    EXPECT_EQ(server.errors(), 1u);
}

TEST(ServeLifecycle, CachedResultAnswersAnyBudget)
{
    VipServer server;
    RunSpec budgeted = dotSpec();
    budgeted.budgetMs = 60'000;
    const auto responses = serveLines(
        server, runRequestLine(dotSpec()) + runRequestLine(budgeted));
    ASSERT_EQ(responses.size(), 2u);
    EXPECT_EQ(responses[0], responses[1]);
    EXPECT_EQ(server.cacheHits(), 1u);
    EXPECT_EQ(server.cacheMisses(), 1u);
}

TEST(ServeLifecycle, CancelCommandStopsInFlightRuns)
{
    ServeOptions opts;
    opts.jobs = 2;
    VipServer server(opts);

    RunSpec spin = spinSpec();
    spin.budgetMs = 60'000;  // backstop so a broken cancel still ends
    std::istringstream in(runRequestLine(spin));
    std::ostringstream out;
    std::thread conn([&server, &in, &out] { server.serve(in, out); });

    // Trip the in-flight run's token (the programmatic twin of the
    // {"cmd":"cancel"} request) as soon as it is registered.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (server.cancelActiveRuns() == 0 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    conn.join();

    const auto responses = lines(out.str());
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(errorKind(responses[0]), "cancelled");
    EXPECT_EQ(server.cancelledRuns(), 1u);
}

TEST(ServeLifecycle, CancelCommandWithNothingInFlight)
{
    VipServer server;
    const auto responses = serveLines(server, "{\"cmd\":\"cancel\"}\n");
    ASSERT_EQ(responses.size(), 1u);
    const Json j = Json::parse(responses[0]);
    EXPECT_EQ(j.at("cancelled").asU64(), 0u);
    EXPECT_TRUE(j.at("ok").asBool());
}

TEST(ServeLifecycle, OverloadedRunsAreShedStructurally)
{
    ServeOptions opts;
    opts.jobs = 2;
    opts.maxQueuedRuns = 1;
    VipServer server(opts);

    RunSpec spin = spinSpec();
    spin.budgetMs = 400;  // occupies the one admission slot, then times out
    const auto responses = serveLines(
        server, runRequestLine(spin) + runRequestLine(dotSpec()) +
                    runRequestLine(dotSpec()));
    ASSERT_EQ(responses.size(), 3u);
    EXPECT_EQ(errorKind(responses[0]), "timeout");
    EXPECT_EQ(errorKind(responses[1]), "overloaded");
    EXPECT_EQ(errorKind(responses[2]), "overloaded");
    EXPECT_EQ(server.shed(), 2u);
}

TEST(ServeLifecycle, OversizedLineIsAnsweredAndServingContinues)
{
    ServeOptions opts;
    opts.maxLineBytes = 16384;  // the dot request itself is a few KiB
    VipServer server(opts);
    const std::string big(65536, 'x');
    const auto responses =
        serveLines(server, big + "\n" + runRequestLine(dotSpec()));
    ASSERT_EQ(responses.size(), 2u);
    EXPECT_EQ(errorKind(responses[0]), "protocol");
    EXPECT_NE(Json::parse(responses[1]).find("key"), nullptr);
}

TEST(ServeLifecycle, TruncatedJsonAtEofGetsOneStructuredError)
{
    VipServer server;
    // No trailing newline: the unterminated final line must still be
    // served (and rejected structurally), not silently dropped.
    const auto responses = serveLines(server, "{\"run\": {\"maxCy");
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_NE(Json::parse(responses[0]).find("error"), nullptr);
    EXPECT_EQ(server.errors(), 1u);
}

TEST(ServeLifecycle, DeadOutputStreamEndsServeButNotTheServer)
{
    VipServer server;
    {
        std::istringstream in(runRequestLine(dotSpec()) +
                              runRequestLine(dotSpec()));
        std::ostringstream out;
        out.setstate(std::ios::badbit);  // client vanished
        server.serve(in, out);           // must return, not wedge
    }
    // The server survives a dead connection and serves the next one.
    const auto responses = serveLines(server, runRequestLine(dotSpec()));
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_NE(Json::parse(responses[0]).find("key"), nullptr);
}

TEST(ServeLifecycle, StopRequestedDrainsAndReturns)
{
    ServeOptions opts;
    std::atomic<bool> stop{false};
    opts.stopRequested = [&stop] {
        return stop.load(std::memory_order_relaxed);
    };
    VipServer server(opts);
    // First line served normally; then the transport asks to stop and
    // the second line is never read.
    std::istringstream in(runRequestLine(dotSpec()) +
                          runRequestLine(dotSpec()));
    std::ostringstream out;
    std::istringstream first(runRequestLine(dotSpec()));
    server.serve(first, out);
    stop.store(true, std::memory_order_relaxed);
    std::ostringstream out2;
    server.serve(in, out2);
    EXPECT_EQ(lines(out.str()).size(), 1u);
    EXPECT_TRUE(out2.str().empty());
}

// ---- Retry ----------------------------------------------------------

TEST(Retry, TransientFailureRetriesUntilSuccess)
{
    SweepEngine engine(1);
    engine.setRetryPolicy({3, 1});
    unsigned attempts = 0;
    engine.submit([&attempts] {
        if (++attempts <= 2)
            throw TransientError("flaky host");
    });
    EXPECT_TRUE(engine.waitCollect().empty());
    EXPECT_EQ(attempts, 3u);
    EXPECT_EQ(engine.retries(), 2u);
}

TEST(Retry, BadAllocCountsAsTransient)
{
    SweepEngine engine(1);
    engine.setRetryPolicy({2, 1});
    unsigned attempts = 0;
    engine.submit([&attempts] {
        if (++attempts == 1)
            throw std::bad_alloc();
    });
    EXPECT_TRUE(engine.waitCollect().empty());
    EXPECT_EQ(attempts, 2u);
    EXPECT_EQ(engine.retries(), 1u);
}

TEST(Retry, ExhaustedRetriesReportAttempts)
{
    SweepEngine engine(1);
    engine.setRetryPolicy({2, 1});
    unsigned attempts = 0;
    engine.submit([&attempts] {
        ++attempts;
        throw TransientError("always down");
    });
    const auto failures = engine.waitCollect();
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures[0].kind, "transient");
    EXPECT_EQ(failures[0].attempts, 3u);
    EXPECT_EQ(attempts, 3u);
    EXPECT_EQ(engine.retries(), 2u);
}

TEST(Retry, DeterministicFailuresAreNotRetried)
{
    SweepEngine engine(1);
    engine.setRetryPolicy({5, 1});
    unsigned attempts = 0;
    engine.submit([&attempts] {
        ++attempts;
        throw ConfigError("bad knob");  // recurs identically
    });
    const auto failures = engine.waitCollect();
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures[0].kind, "config");
    EXPECT_EQ(failures[0].attempts, 1u);
    EXPECT_EQ(attempts, 1u);
    EXPECT_EQ(engine.retries(), 0u);
}

TEST(Retry, RetriedRunIsByteIdenticalToFirstTrySuccess)
{
    const RunSpec spec = dotSpec();
    const std::string golden = runSpec(spec).toJson().str();
    SweepEngine engine(1);
    engine.setRetryPolicy({2, 1});
    unsigned attempts = 0;
    std::string retried;
    engine.submit([&attempts, &retried, &spec] {
        if (++attempts == 1)
            throw TransientError("flaky host");
        retried = runSpec(spec).toJson().str();
    });
    engine.wait();
    EXPECT_EQ(retried, golden);
}

// ---- Journal --------------------------------------------------------

TEST(Journal, RoundTripPairsRequestsWithResponses)
{
    const std::string path = tempPath("lifecycle_journal_rt.jsonl");
    std::uint64_t s1 = 0, s2 = 0;
    {
        CampaignJournal journal(path);
        s1 = journal.appendRequest("{\"cmd\":\"stats\"}");
        s2 = journal.appendRequest("{\"cmd\":\"shutdown\"}");
        journal.appendResponse(s1, "{\"serve\":{}}");
    }
    const auto entries = CampaignJournal::load(path);
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].seq, s1);
    EXPECT_TRUE(entries[0].answered);
    EXPECT_EQ(entries[0].response, "{\"serve\":{}}");
    EXPECT_EQ(entries[1].seq, s2);
    EXPECT_FALSE(entries[1].answered);
    EXPECT_EQ(entries[1].request, "{\"cmd\":\"shutdown\"}");

    // A reopened journal keeps numbering past what it recovered.
    CampaignJournal reopened(path);
    EXPECT_GT(reopened.appendRequest("{\"cmd\":\"stats\"}"), s2);
}

TEST(Journal, TornTailAndGarbageLinesAreSkipped)
{
    const std::string path = tempPath("lifecycle_journal_torn.jsonl");
    {
        CampaignJournal journal(path);
        const std::uint64_t s = journal.appendRequest("{\"cmd\":\"stats\"}");
        journal.appendResponse(s, "{\"serve\":{}}");
        journal.appendRequest("{\"cmd\":\"shutdown\"}");
    }
    {
        // Simulate the crash: a torn final line and stray garbage.
        std::ofstream out(path, std::ios::app);
        out << "not json at all\n{\"req\": 9, \"line";
    }
    const auto entries = CampaignJournal::load(path);
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_TRUE(entries[0].answered);
    EXPECT_FALSE(entries[1].answered);
    EXPECT_EQ(CampaignJournal::load(tempPath("lifecycle_missing.jsonl"))
                  .size(),
              0u);
}

/// The crash-recovery contract end to end: a daemon dies mid-campaign,
/// a restarted daemon re-answers completed points from the journal
/// (byte-identically, from cache) and re-runs only the tail.
TEST(Journal, RestartReplaysCompletedPointsByteIdentically)
{
    // Four distinct points: vary a poke so each has its own key.
    std::string campaign;
    std::vector<RunSpec> specs;
    for (std::int16_t i = 0; i < 4; ++i) {
        RunSpec spec = dotSpec();
        spec.pokes[0].values[0] = static_cast<std::int16_t>(20 + i);
        specs.push_back(spec);
        campaign += runRequestLine(spec);
    }

    // Golden: the uninterrupted campaign.
    VipServer goldenServer;
    const auto golden = serveLines(goldenServer, campaign);
    ASSERT_EQ(golden.size(), 4u);

    const std::string path = tempPath("lifecycle_journal_restart.jsonl");
    {
        // First daemon: serves two points, then "crashes" (destroyed
        // with two campaign lines never delivered).
        ServeOptions opts;
        opts.journalPath = path;
        VipServer first(opts);
        const auto served = serveLines(
            first, runRequestLine(specs[0]) + runRequestLine(specs[1]));
        ASSERT_EQ(served.size(), 2u);
        EXPECT_EQ(served[0], golden[0]);
        EXPECT_EQ(served[1], golden[1]);
    }
    {
        // Restarted daemon, same journal: the full campaign is
        // re-sent; completed points come from the recovered cache.
        ServeOptions opts;
        opts.journalPath = path;
        VipServer second(opts);
        EXPECT_EQ(serveLines(second, campaign), golden);
        EXPECT_EQ(second.cacheHits(), 2u);
        EXPECT_EQ(second.cacheMisses(), 2u);
    }
    // The journal now holds the whole campaign, completed: a third
    // daemon answers everything from cache.
    {
        ServeOptions opts;
        opts.journalPath = path;
        VipServer third(opts);
        EXPECT_EQ(serveLines(third, campaign), golden);
        EXPECT_EQ(third.cacheHits(), 4u);
        EXPECT_EQ(third.cacheMisses(), 0u);
    }
}

TEST(Journal, UnansweredTailIsVisibleForResume)
{
    const std::string path = tempPath("lifecycle_journal_tail.jsonl");
    const RunSpec spec = dotSpec();
    const std::string line =
        runRequestLine(spec).substr(0, runRequestLine(spec).size() - 1);
    std::uint64_t tail_seq = 0;
    {
        ServeOptions opts;
        opts.journalPath = path;
        VipServer server(opts);
        serveLines(server, runRequestLine(spec));
        // Simulate a crash after journaling a request but before the
        // run finished: append the request line only.
        CampaignJournal journal(path);
        tail_seq = journal.appendRequest(line);
    }
    auto entries = CampaignJournal::load(path);
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_TRUE(entries[0].answered);
    ASSERT_FALSE(entries[1].answered);
    EXPECT_EQ(entries[1].request, line);

    // Resume: run the tail and append its response under the original
    // sequence number (what vip-run --resume does); the journal then
    // reads back complete with no duplicate requests.
    VipServer resumer;
    std::istringstream in(entries[1].request + "\n");
    std::ostringstream out;
    resumer.serve(in, out);
    std::string resp = out.str();
    while (!resp.empty() && resp.back() == '\n')
        resp.pop_back();
    CampaignJournal(path).appendResponse(tail_seq, resp);

    entries = CampaignJournal::load(path);
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_TRUE(entries[1].answered);
    EXPECT_EQ(entries[1].response, entries[0].response);
}

} // namespace
} // namespace vip
