/**
 * @file
 * Verification of the hierarchical BP construct/copy kernels against
 * the reference coarsen()/copyMessages(), and the full four-phase
 * hierarchical pipeline with every phase on the simulator.
 */

#include <gtest/gtest.h>

#include "kernels/bp_kernel.hh"
#include "kernels/hier_kernel.hh"
#include "kernels/layout.hh"
#include "kernels/runner.hh"
#include "sim/rng.hh"
#include "workloads/mrf.hh"

namespace vip {
namespace {

MrfProblem
makeProblem(unsigned w, unsigned h, unsigned labels, std::uint64_t seed)
{
    Rng rng(seed);
    MrfProblem p;
    p.width = w;
    p.height = h;
    p.labels = labels;
    p.smoothCost = truncatedLinearSmoothness(labels, 3, 12);
    p.dataCost.resize(static_cast<std::size_t>(w) * h * labels);
    for (auto &c : p.dataCost)
        c = static_cast<Fx16>(rng.nextBelow(25));
    return p;
}

TEST(HierKernel, ConstructMatchesCoarsen)
{
    const unsigned W = 12, H = 8, L = 8;
    MrfProblem fine = makeProblem(W, H, L, 61);
    const MrfProblem want = coarsen(fine);

    SystemConfig cfg = makeSystemConfig(1, 2);
    cfg.pe.strictHazards = true;
    VipSystem sys(cfg);
    MrfDramLayout fine_lay(sys.vaultBase(0), W, H, L);
    MrfDramLayout coarse_lay(fine_lay.end() + 64, W / 2, H / 2, L);
    fine_lay.upload(fine, sys.dram());

    // Two PEs split the coarse rows.
    for (unsigned pe = 0; pe < 2; ++pe) {
        ConstructJob job;
        job.fine = &fine_lay;
        job.coarse = &coarse_lay;
        job.rowBegin = pe * (H / 4);
        job.rowEnd = (pe + 1) * (H / 4);
        sys.pe(pe).loadProgram(genConstruct(job));
    }
    sys.run(10'000'000);
    ASSERT_TRUE(sys.allIdle());

    for (unsigned y = 0; y < H / 2; ++y) {
        for (unsigned x = 0; x < W / 2; ++x) {
            for (unsigned l = 0; l < L; ++l) {
                ASSERT_EQ(sys.dram().load<Fx16>(
                              coarse_lay.dataAddr(x, y) + 2 * l),
                          want.dataAt(x, y)[l])
                    << x << "," << y << " l" << l;
            }
        }
    }
    EXPECT_EQ(sys.pe(0).stats().timingHazards.value(), 0u);
}

TEST(HierKernel, CopyMatchesReferenceUpsampling)
{
    const unsigned W = 10, H = 6, L = 4;
    MrfProblem fine = makeProblem(W, H, L, 62);
    const MrfProblem coarse_p = coarsen(fine);

    // Seed the coarse messages with something nontrivial.
    BpState coarse_bp(coarse_p);
    coarse_bp.iterate();
    BpState want(fine);
    copyMessages(coarse_bp, want);

    SystemConfig cfg = makeSystemConfig(1, 2);
    cfg.pe.strictHazards = true;
    VipSystem sys(cfg);
    MrfDramLayout fine_lay(sys.vaultBase(0), W, H, L);
    MrfDramLayout coarse_lay(fine_lay.end() + 64, W / 2, H / 2, L);
    coarse_lay.uploadMessages(coarse_bp, sys.dram());

    for (unsigned pe = 0; pe < 2; ++pe) {
        CopyJob job;
        job.coarse = &coarse_lay;
        job.fine = &fine_lay;
        job.rowBegin = pe * (H / 2);
        job.rowEnd = (pe + 1) * (H / 2);
        sys.pe(pe).loadProgram(genCopyMessages(job));
    }
    sys.run(10'000'000);
    ASSERT_TRUE(sys.allIdle());

    BpState got(fine);
    fine_lay.downloadMessages(got, sys.dram());
    for (unsigned d = 0; d < NumMsgDirs; ++d) {
        for (unsigned y = 0; y < H; ++y) {
            for (unsigned x = 0; x < W; ++x) {
                for (unsigned l = 0; l < L; ++l) {
                    ASSERT_EQ(want.msgAt(static_cast<MsgDir>(d), x, y)[l],
                              got.msgAt(static_cast<MsgDir>(d), x, y)[l])
                        << d << " " << x << "," << y;
                }
            }
        }
    }
}

TEST(HierKernel, FullPipelineOnSimulator)
{
    // construct -> coarse BP -> copy -> fine BP, all four phases as
    // VIP programs, against the all-reference flow.
    const unsigned W = 16, H = 8, L = 4;
    MrfProblem fine = makeProblem(W, H, L, 63);
    MrfProblem coarse_p = coarsen(fine);

    BpState ref_coarse(coarse_p);
    ref_coarse.iterate();
    BpState ref_fine(fine);
    copyMessages(ref_coarse, ref_fine);
    ref_fine.iterate();

    SystemConfig cfg = makeSystemConfig(1, 4);
    cfg.pe.strictHazards = true;
    VipSystem sys(cfg);
    MrfDramLayout fine_lay(sys.vaultBase(0), W, H, L);
    MrfDramLayout coarse_lay(fine_lay.end() + 64, W / 2, H / 2, L);
    const Addr flags = coarse_lay.end() + 64;
    fine_lay.upload(fine, sys.dram());
    // The coarse layout needs its smoothness matrix staged; data costs
    // come from the construct kernel.
    sys.dram().write(coarse_lay.smoothAddr(), coarse_p.smoothCost.data(),
                     coarse_p.smoothCost.size() * 2);

    // Phase 1: construct on 4 PEs.
    for (unsigned pe = 0; pe < 4; ++pe) {
        ConstructJob job;
        job.fine = &fine_lay;
        job.coarse = &coarse_lay;
        job.rowBegin = pe * (H / 8);
        job.rowEnd = (pe + 1) * (H / 8);
        sys.pe(pe).loadProgram(genConstruct(job));
    }
    sys.run(10'000'000);
    ASSERT_TRUE(sys.allIdle());

    auto run_bp = [&](const MrfDramLayout &lay, unsigned w, unsigned h,
                      Addr flag_base) {
        for (unsigned pe = 0; pe < 4; ++pe) {
            auto slice = [&](unsigned lanes) {
                const unsigned per = (lanes + 3) / 4;
                const unsigned b = std::min(lanes, pe * per);
                return std::make_pair(b, std::min(lanes, b + per));
            };
            const auto [hb, he] = slice(h);
            const auto [vb, ve] = slice(w);
            BpSweepJob jobs[4] = {{SweepDir::Right, hb, he},
                                  {SweepDir::Left, hb, he},
                                  {SweepDir::Down, vb, ve},
                                  {SweepDir::Up, vb, ve}};
            sys.pe(pe).loadProgram(genBpIterations(
                lay, BpVariant{}, jobs, 1, flag_base, pe, 4));
        }
        sys.run(100'000'000);
        ASSERT_TRUE(sys.allIdle());
    };

    // Phase 2: coarse BP-M iteration.
    run_bp(coarse_lay, W / 2, H / 2, flags);

    // Phase 3: copy messages up.
    for (unsigned pe = 0; pe < 4; ++pe) {
        CopyJob job;
        job.coarse = &coarse_lay;
        job.fine = &fine_lay;
        job.rowBegin = pe * (H / 4);
        job.rowEnd = (pe + 1) * (H / 4);
        sys.pe(pe).loadProgram(genCopyMessages(job));
    }
    sys.run(10'000'000);
    ASSERT_TRUE(sys.allIdle());

    // Phase 4: fine BP-M iteration.
    run_bp(fine_lay, W, H, flags + 4096);

    BpState got(fine);
    fine_lay.downloadMessages(got, sys.dram());
    EXPECT_EQ(ref_fine.decode(), got.decode());
    for (unsigned d = 0; d < NumMsgDirs; ++d) {
        for (unsigned y = 0; y < H; ++y) {
            for (unsigned x = 0; x < W; ++x) {
                for (unsigned l = 0; l < L; ++l) {
                    ASSERT_EQ(ref_fine.msgAt(static_cast<MsgDir>(d), x,
                                             y)[l],
                              got.msgAt(static_cast<MsgDir>(d), x, y)[l]);
                }
            }
        }
    }
}

} // namespace
} // namespace vip
