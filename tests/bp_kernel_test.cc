/**
 * @file
 * End-to-end verification of the generated BP-M kernels against the
 * reference implementation — the paper's own correctness methodology
 * (Sec. V-A): run the simulated code and compare outputs with a
 * reference C++ implementation, bit for bit.
 *
 * strictHazards is enabled throughout: a mis-scheduled kernel (one
 * that reads a vector result inside its producer's timing shadow)
 * panics instead of silently passing, proving the generated schedules
 * are legal on hardware with exposed vector latency.
 */

#include <gtest/gtest.h>

#include "kernels/bp_kernel.hh"
#include "kernels/layout.hh"
#include "kernels/runner.hh"
#include "sim/rng.hh"
#include "workloads/mrf.hh"

namespace vip {
namespace {

MrfProblem
makeProblem(unsigned w, unsigned h, unsigned labels, std::uint64_t seed)
{
    Rng rng(seed);
    MrfProblem p;
    p.width = w;
    p.height = h;
    p.labels = labels;
    p.smoothCost = truncatedLinearSmoothness(labels, 3, 12);
    p.dataCost.resize(static_cast<std::size_t>(w) * h * labels);
    for (auto &c : p.dataCost)
        c = static_cast<Fx16>(rng.nextBelow(25));
    return p;
}

/** Run one sweep on one PE and compare the produced field. */
void
checkSingleSweep(SweepDir dir, const BpVariant &variant)
{
    const unsigned W = 12, H = 10, L = 8;
    MrfProblem problem = makeProblem(W, H, L, 42);

    // Reference (normalized when the kernel variant normalizes).
    BpState ref(problem, variant.normalize);
    switch (dir) {
      case SweepDir::Right: ref.sweepRight(); break;
      case SweepDir::Left: ref.sweepLeft(); break;
      case SweepDir::Down: ref.sweepDown(); break;
      case SweepDir::Up: ref.sweepUp(); break;
    }

    // Simulation.
    SystemConfig cfg = makeSystemConfig(1, 1);
    cfg.pe.strictHazards = true;
    VipSystem sys(cfg);
    MrfDramLayout layout(sys.vaultBase(0), W, H, L);
    layout.upload(problem, sys.dram());

    const bool vertical = dir == SweepDir::Down || dir == SweepDir::Up;
    BpSweepJob job{dir, 0, vertical ? W : H};
    sys.pe(0).loadProgram(genBpSweep(layout, variant, job));
    sys.run(20'000'000);
    ASSERT_TRUE(sys.allIdle()) << "simulation did not finish";

    BpState got(problem);
    layout.downloadMessages(got, sys.dram());

    for (unsigned d = 0; d < NumMsgDirs; ++d) {
        for (unsigned y = 0; y < H; ++y) {
            for (unsigned x = 0; x < W; ++x) {
                for (unsigned l = 0; l < L; ++l) {
                    ASSERT_EQ(ref.msgAt(static_cast<MsgDir>(d), x, y)[l],
                              got.msgAt(static_cast<MsgDir>(d), x, y)[l])
                        << "dir=" << d << " x=" << x << " y=" << y
                        << " l=" << l;
                }
            }
        }
    }
    EXPECT_EQ(sys.pe(0).stats().timingHazards.value(), 0u);
}

TEST(BpKernel, SweepRightMatchesReference)
{
    checkSingleSweep(SweepDir::Right, BpVariant{});
}

TEST(BpKernel, SweepLeftMatchesReference)
{
    checkSingleSweep(SweepDir::Left, BpVariant{});
}

TEST(BpKernel, SweepDownMatchesReference)
{
    checkSingleSweep(SweepDir::Down, BpVariant{});
}

TEST(BpKernel, SweepUpMatchesReference)
{
    checkSingleSweep(SweepDir::Up, BpVariant{});
}

TEST(BpKernel, SoftwareReductionVariantMatchesReference)
{
    checkSingleSweep(SweepDir::Right,
                     BpVariant{false, false, 4, false});
}

TEST(BpKernel, RegisterFileVariantMatchesReference)
{
    checkSingleSweep(SweepDir::Right,
                     BpVariant{true, true, 4, false});
}

TEST(BpKernel, RegisterFileNoReductionVariantMatchesReference)
{
    checkSingleSweep(SweepDir::Right,
                     BpVariant{false, true, 4, false});
}

/** Full iterations on four PEs with barriers, against the reference. */
TEST(BpKernel, MultiPeIterationsMatchReference)
{
    const unsigned W = 16, H = 12, L = 8;
    const unsigned iterations = 2;
    MrfProblem problem = makeProblem(W, H, L, 7);

    BpState ref(problem);
    for (unsigned i = 0; i < iterations; ++i)
        ref.iterate();

    SystemConfig cfg = makeSystemConfig(1, 4);
    cfg.pe.strictHazards = true;
    VipSystem sys(cfg);
    MrfDramLayout layout(sys.vaultBase(0), W, H, L);
    layout.upload(problem, sys.dram());
    const Addr flag_base = layout.end() + 64;

    const unsigned num_pes = 4;
    for (unsigned pe = 0; pe < num_pes; ++pe) {
        // Split lanes evenly; horizontal sweeps have H lanes, vertical W.
        auto slice = [&](unsigned lanes) {
            const unsigned per = (lanes + num_pes - 1) / num_pes;
            const unsigned begin = std::min(lanes, pe * per);
            const unsigned end = std::min(lanes, begin + per);
            return std::make_pair(begin, end);
        };
        const auto [hb, he] = slice(H);
        const auto [vb, ve] = slice(W);
        BpSweepJob jobs[4] = {
            {SweepDir::Right, hb, he},
            {SweepDir::Left, hb, he},
            {SweepDir::Down, vb, ve},
            {SweepDir::Up, vb, ve},
        };
        sys.pe(pe).loadProgram(genBpIterations(
            layout, BpVariant{}, jobs, iterations, flag_base, pe,
            num_pes));
    }
    sys.run(50'000'000);
    ASSERT_TRUE(sys.allIdle()) << "simulation did not finish";

    BpState got(problem);
    layout.downloadMessages(got, sys.dram());
    for (unsigned d = 0; d < NumMsgDirs; ++d) {
        for (unsigned y = 0; y < H; ++y) {
            for (unsigned x = 0; x < W; ++x) {
                for (unsigned l = 0; l < L; ++l) {
                    ASSERT_EQ(ref.msgAt(static_cast<MsgDir>(d), x, y)[l],
                              got.msgAt(static_cast<MsgDir>(d), x, y)[l])
                        << "dir=" << d << " x=" << x << " y=" << y
                        << " l=" << l;
                }
            }
        }
    }
    // Decoded labelings must agree as well.
    EXPECT_EQ(ref.decode(), got.decode());
}

} // namespace
} // namespace vip
