/**
 * @file
 * Tests for the reference workloads: fixed-point semantics, the MRF /
 * BP-M reference, hierarchical BP, stereo synthesis, and the VGG layer
 * tables (including the paper's headline operation counts).
 */

#include <gtest/gtest.h>

#include "sim/rng.hh"
#include "workloads/fixed.hh"
#include "workloads/mrf.hh"
#include "workloads/nn.hh"
#include "workloads/stereo.hh"

namespace vip {
namespace {

TEST(Fixed, SaturatingPrimitives)
{
    EXPECT_EQ(sat16(40000), 32767);
    EXPECT_EQ(sat16(-40000), -32768);
    EXPECT_EQ(sat16(123), 123);
    EXPECT_EQ(addSat(30000, 30000), 32767);
    EXPECT_EQ(addSat(-30000, -30000), -32768);
    EXPECT_EQ(subSat(-30000, 30000), -32768);
    EXPECT_EQ(mulSat(1000, 1000), 32767);
    EXPECT_EQ(mulSat(100, -100), -10000);
    EXPECT_EQ(reluFx(-5), 0);
    EXPECT_EQ(reluFx(5), 5);
}

TEST(Fixed, ReductionsAccumulateIn64Bit)
{
    // Intermediate sums may exceed int16; only writeback saturates.
    const Fx16 row[4] = {30000, 30000, -30000, -29000};
    const Fx16 vec[4] = {1, 1, 1, 1};
    EXPECT_EQ(mulAddReduce(row, vec, 4), 1000);
    const Fx16 row2[2] = {20000, -20000};
    const Fx16 vec2[2] = {20000, 20000};
    // 4e8 - 4e8 = 0 without intermediate clamping.
    EXPECT_EQ(mulAddReduce(row2, vec2, 2), 0);
    const Fx16 rowm[3] = {5, -3, 7};
    const Fx16 vecm[3] = {10, 10, 10};
    EXPECT_EQ(addMinReduce(rowm, vecm, 3), 7);
}

TEST(Fixed, QuantizeRoundTripsWithinOneLsb)
{
    Rng rng(21);
    std::vector<float> data(256);
    for (auto &v : data) {
        v = static_cast<float>(rng.nextDouble() * 20.0 - 10.0);
    }
    const int e = chooseScaleExponent(data);
    const auto q = quantize(data, e);
    const auto back = dequantize(q, e);
    const float lsb = std::ldexp(1.0f, -e);
    for (std::size_t i = 0; i < data.size(); ++i)
        EXPECT_NEAR(back[i], data[i], lsb);
}

TEST(Fixed, ScaleExponentKeepsMagnitudeInBits)
{
    const std::vector<float> data = {0.001f, -3.75f, 2.0f};
    const int e = chooseScaleExponent(data, 14);
    const auto q = quantize(data, e);
    for (auto v : q)
        EXPECT_LT(std::abs(v), 1 << 14);
    // And the next exponent would overflow the target.
    const auto q2 = quantize(data, e + 2);
    bool over = false;
    for (auto v : q2)
        over = over || std::abs(v) >= (1 << 14);
    EXPECT_TRUE(over);
}

TEST(Smoothness, TruncatedLinearShape)
{
    const auto s = truncatedLinearSmoothness(8, 3, 10);
    ASSERT_EQ(s.size(), 64u);
    for (unsigned i = 0; i < 8; ++i) {
        EXPECT_EQ(s[i * 8 + i], 0);  // zero on the diagonal
        for (unsigned j = 0; j < 8; ++j) {
            EXPECT_EQ(s[i * 8 + j], s[j * 8 + i]);  // symmetric
            EXPECT_LE(s[i * 8 + j], 10);            // truncated
        }
    }
    EXPECT_EQ(s[0 * 8 + 1], 3);
    EXPECT_EQ(s[0 * 8 + 7], 10);
}

MrfProblem
smallProblem(unsigned w, unsigned h, unsigned labels, std::uint64_t seed)
{
    Rng rng(seed);
    MrfProblem p;
    p.width = w;
    p.height = h;
    p.labels = labels;
    p.smoothCost = truncatedLinearSmoothness(labels, 2, 8);
    p.dataCost.resize(static_cast<std::size_t>(w) * h * labels);
    for (auto &c : p.dataCost)
        c = static_cast<Fx16>(rng.nextBelow(20));
    return p;
}

TEST(Bp, MessageUpdateCountsMatchPaper)
{
    // 4 * Ix * Iy updates per iteration (Sec. II-A).
    MrfProblem p = smallProblem(10, 6, 4, 1);
    BpState bp(p);
    bp.iterate();
    // Each sweep skips one border line: 4*W*H - (2H + 2W) exactly.
    EXPECT_EQ(bp.updatesPerformed(),
              2ull * (p.width - 1) * p.height +
                  2ull * (p.height - 1) * p.width);
}

/** A structured problem: noisy observations of a piecewise-constant
 *  image, where smoothing genuinely lowers the labeling energy. */
MrfProblem
structuredProblem(unsigned w, unsigned h, unsigned labels,
                  std::uint64_t seed)
{
    Rng rng(seed);
    MrfProblem p;
    p.width = w;
    p.height = h;
    p.labels = labels;
    p.smoothCost = truncatedLinearSmoothness(labels, 4, 14);
    p.dataCost.resize(static_cast<std::size_t>(w) * h * labels);
    for (unsigned y = 0; y < h; ++y) {
        for (unsigned x = 0; x < w; ++x) {
            unsigned truth = x < w / 2 ? 1 : labels - 2;
            if (rng.nextBelow(100) < 25)
                truth = rng.nextBelow(labels);  // noise
            Fx16 *c = p.dataCost.data() + p.pixelIndex(x, y);
            for (unsigned l = 0; l < labels; ++l) {
                const int d = std::abs(static_cast<int>(l) -
                                       static_cast<int>(truth));
                c[l] = static_cast<Fx16>(std::min(3 * d * d, 40));
            }
        }
    }
    return p;
}

TEST(Bp, ImprovesLabelingEnergy)
{
    MrfProblem p = structuredProblem(16, 12, 8, 2);
    BpState bp(p);
    const auto e0 = bp.energy(bp.decode());
    for (int i = 0; i < 4; ++i)
        bp.iterate();
    const auto e4 = bp.energy(bp.decode());
    EXPECT_LT(e4, e0);
}

TEST(Bp, NormalizationKeepsMessagesBounded)
{
    // The reason BpState normalizes: without it, 16-bit messages
    // saturate within a few iterations (see UniformCosts... below);
    // with it they stay bounded over many.
    MrfProblem p = structuredProblem(16, 12, 8, 9);
    BpState bp(p);
    for (int i = 0; i < 12; ++i)
        bp.iterate();
    Fx16 max_mag = 0;
    for (unsigned d = 0; d < NumMsgDirs; ++d) {
        for (unsigned y = 0; y < p.height; ++y) {
            for (unsigned x = 0; x < p.width; ++x) {
                for (unsigned l = 0; l < p.labels; ++l) {
                    max_mag = std::max<Fx16>(
                        max_mag,
                        std::abs(bp.msgAt(static_cast<MsgDir>(d), x,
                                          y)[l]));
                }
            }
        }
    }
    EXPECT_LT(max_mag, 2000);

    // And the unnormalized variant saturates on the same problem.
    BpState raw(p, /*normalize=*/false);
    for (int i = 0; i < 12; ++i)
        raw.iterate();
    Fx16 raw_max = 0;
    for (unsigned l = 0; l < p.labels; ++l) {
        raw_max = std::max<Fx16>(
            raw_max, std::abs(raw.msgAt(FromLeft, 8, 6)[l]));
    }
    EXPECT_EQ(raw_max, 32767);
}

TEST(Bp, UniformCostsYieldStableLabeling)
{
    // Without per-update normalization, messages grow monotonically
    // (BP-M's chained updates compound within a sweep) and eventually
    // saturate int16 — the argmin is translation-invariant, so the
    // labeling stays stable and uniform-cost inputs stay uniform.
    MrfProblem p = smallProblem(8, 8, 4, 3);
    std::fill(p.dataCost.begin(), p.dataCost.end(), Fx16{5});
    BpState bp(p);
    for (int i = 0; i < 3; ++i)
        bp.iterate();
    const auto labels = bp.decode();
    for (auto l : labels)
        EXPECT_EQ(l, labels[0]);
}

TEST(Bp, CoarsenSumsChildren)
{
    MrfProblem p = smallProblem(6, 4, 4, 4);
    const MrfProblem c = coarsen(p);
    EXPECT_EQ(c.width, 3u);
    EXPECT_EQ(c.height, 2u);
    for (unsigned l = 0; l < 4; ++l) {
        const Fx16 want = addSat(
            addSat(addSat(p.dataAt(0, 0)[l], p.dataAt(1, 0)[l]),
                   p.dataAt(0, 1)[l]),
            p.dataAt(1, 1)[l]);
        EXPECT_EQ(c.dataAt(0, 0)[l], want);
    }
}

TEST(Bp, HierarchicalSeedingImprovesOnNoPropagation)
{
    MrfProblem p = structuredProblem(16, 16, 8, 5);

    // Data-cost-only labeling (zero messages).
    BpState none(p);
    const auto base_energy = none.energy(none.decode());

    // Hierarchical: coarse iterations seed the fine grid (the
    // construct/copy phases of Sec. VI-A), then one fine iteration.
    const MrfProblem cp = coarsen(p);
    BpState coarse(cp);
    for (int i = 0; i < 3; ++i)
        coarse.iterate();
    BpState fine(p);
    copyMessages(coarse, fine);
    fine.iterate();
    EXPECT_LT(fine.energy(fine.decode()), base_energy);
}

TEST(Stereo, SyntheticPairIsConsistent)
{
    Rng rng(6);
    const StereoPair pair = makeSyntheticStereo(64, 48, 8, rng);
    EXPECT_EQ(pair.left.size(), 64u * 48);
    // Where ground truth is visible, right(x - d) == left(x).
    unsigned checked = 0;
    for (unsigned y = 0; y < 48; ++y) {
        for (unsigned x = 8; x < 64; ++x) {
            const unsigned d = pair.groundTruth[y * 64 + x];
            // Skip pixels occluded by a closer rectangle.
            bool occluded = false;
            for (unsigned x2 = x + 1; x2 < 64 && x2 <= x + 8; ++x2) {
                const unsigned d2 = pair.groundTruth[y * 64 + x2];
                if (x2 - d2 == x - d && d2 > d)
                    occluded = true;
            }
            if (occluded)
                continue;
            EXPECT_EQ(pair.right[y * 64 + x - d], pair.left[y * 64 + x])
                << x << "," << y;
            ++checked;
        }
    }
    EXPECT_GT(checked, 1000u);
}

TEST(Stereo, BpRecoversDisparity)
{
    Rng rng(7);
    const StereoPair pair = makeSyntheticStereo(48, 32, 6, rng);
    MrfProblem mrf = stereoMrf(pair, 6, 20, 4, 16);
    BpState bp(mrf);
    for (int i = 0; i < 4; ++i)
        bp.iterate();
    const double acc = disparityAccuracy(pair, bp.decode(), 1);
    EXPECT_GT(acc, 0.80) << "BP should recover most of the disparity";
}

TEST(Vgg, MacCountsMatchThePaper)
{
    const auto v16 = vgg16Layers();
    std::uint64_t conv_macs = 0, fc_macs = 0;
    unsigned convs = 0, pools = 0, fcs = 0;
    for (const auto &l : v16) {
        switch (l.kind) {
          case LayerDesc::Kind::Conv:
            conv_macs += l.macs();
            ++convs;
            break;
          case LayerDesc::Kind::Pool:
            ++pools;
            break;
          case LayerDesc::Kind::Fc:
            fc_macs += l.macs();
            ++fcs;
            break;
        }
    }
    EXPECT_EQ(convs, 13u);
    EXPECT_EQ(pools, 5u);
    EXPECT_EQ(fcs, 3u);
    // "The thirteen convolution layers in VGG-16 require 15.3 billion
    // multiply-accumulate operations" (Sec. II-B).
    EXPECT_NEAR(static_cast<double>(conv_macs), 15.3e9, 0.2e9);
    // First FC layer: 25,088 inputs x 4,096 outputs ~= 100M MACs.
    EXPECT_EQ(v16[18].inputs, 25088u);
    EXPECT_EQ(v16[18].outputs, 4096u);
    EXPECT_NEAR(static_cast<double>(fc_macs), 123.6e6, 2e6);

    const auto v19 = vgg19Layers();
    unsigned convs19 = 0;
    for (const auto &l : v19) {
        if (l.kind == LayerDesc::Kind::Conv)
            ++convs19;
    }
    EXPECT_EQ(convs19, 16u);
}

TEST(Vgg, ArithmeticIntensityOrdering)
{
    // Convs are compute-rich; pools are memory-bound (Fig. 3b).
    const auto layers = vgg16Layers();
    double min_conv = 1e9, max_pool = 0;
    for (const auto &l : layers) {
        if (l.kind == LayerDesc::Kind::Conv)
            min_conv = std::min(min_conv, l.arithmeticIntensity());
        if (l.kind == LayerDesc::Kind::Pool)
            max_pool = std::max(max_pool, l.arithmeticIntensity());
    }
    EXPECT_GT(min_conv, max_pool);
    EXPECT_LT(max_pool, 1.0);
}

TEST(Nn, ConvReferenceHandComputed)
{
    // 1 input channel, 3x3, all-ones filter: output = window sum.
    FeatureMap in(1, 3, 3);
    for (unsigned i = 0; i < 9; ++i)
        in.data[i] = static_cast<Fx16>(i + 1);
    const std::vector<Fx16> filt(9, 1);
    const std::vector<Fx16> bias = {0};
    const FeatureMap out = convLayer(in, filt, bias, 1, 3, false);
    EXPECT_EQ(out.at(0, 1, 1), 45);          // full window: 1+..+9
    EXPECT_EQ(out.at(0, 0, 0), 1 + 2 + 4 + 5);  // corner with padding
}

TEST(Nn, ConvBiasAndRelu)
{
    FeatureMap in(1, 2, 2);
    in.data = {1, 1, 1, 1};
    const std::vector<Fx16> filt(9, 0);
    const FeatureMap neg = convLayer(in, filt, {-3}, 1, 3, true);
    EXPECT_EQ(neg.at(0, 0, 0), 0);  // ReLU clamps the bias
    const FeatureMap pos = convLayer(in, filt, {7}, 1, 3, true);
    EXPECT_EQ(pos.at(0, 1, 1), 7);
}

TEST(Nn, VipPartialSemanticsAgreeWithoutSaturation)
{
    Rng rng(8);
    FeatureMap in(8, 6, 6);
    for (auto &v : in.data)
        v = static_cast<Fx16>(rng.nextRange(-10, 10));
    const auto filt = randomWeights(4ull * 8 * 9, rng, 3);
    const auto bias = randomWeights(4, rng, 10);
    const FeatureMap plain = convLayer(in, filt, bias, 4, 3);
    for (unsigned zs : {8u, 4u, 2u}) {
        const FeatureMap vip = convLayerVip(in, filt, bias, 4, 3, zs);
        EXPECT_EQ(vip.data, plain.data) << "z shard " << zs;
    }
}

TEST(Nn, FcSegmentedAgreesWithoutSaturation)
{
    Rng rng(9);
    const auto in = randomWeights(64, rng, 10);
    const auto w = randomWeights(32ull * 64, rng, 3);
    const auto bias = randomWeights(32, rng, 10);
    const auto plain = fcLayer(in, w, bias, 32);
    for (unsigned segs : {1u, 2u, 4u, 8u}) {
        EXPECT_EQ(fcLayerSegmented(in, w, bias, 32, segs), plain)
            << segs << " segments";
    }
}

TEST(Nn, MaxPoolHandComputed)
{
    FeatureMap in(1, 4, 4);
    for (unsigned i = 0; i < 16; ++i)
        in.data[i] = static_cast<Fx16>(i);
    const FeatureMap out = maxPool(in, 2);
    EXPECT_EQ(out.height, 2u);
    EXPECT_EQ(out.at(0, 0, 0), 5);
    EXPECT_EQ(out.at(0, 0, 1), 7);
    EXPECT_EQ(out.at(0, 1, 0), 13);
    EXPECT_EQ(out.at(0, 1, 1), 15);
}

TEST(Nn, PoolAndConvOpAccounting)
{
    LayerDesc pool;
    pool.kind = LayerDesc::Kind::Pool;
    pool.inChannels = 64;
    pool.inHeight = 8;
    pool.inWidth = 8;
    pool.window = 2;
    EXPECT_EQ(pool.macs(), 64ull * 4 * 4 * 4);
    EXPECT_EQ(pool.ops(), pool.macs());

    LayerDesc conv;
    conv.kind = LayerDesc::Kind::Conv;
    conv.inChannels = 3;
    conv.outChannels = 64;
    conv.inHeight = 224;
    conv.inWidth = 224;
    conv.kernel = 3;
    EXPECT_EQ(conv.macs(), 64ull * 224 * 224 * 27);
    EXPECT_EQ(conv.ops(), 2 * conv.macs());
}

} // namespace
} // namespace vip
