/**
 * @file
 * Tests for the vip-serve request/response surface: RunSpec JSON
 * round-trips, SystemConfig strict decoding, and the VipServer loop
 * driven over string streams exactly the way vip-serve drives it
 * over stdin — cache hits must be byte-identical, failures must come
 * back structured without killing the loop.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "serve/serve.hh"
#include "sim/json.hh"
#include "system/runspec.hh"

namespace vip {
namespace {

/// The same dot product simulation_test pins, so serve responses
/// carry real counters and a nontrivial DRAM result.
const char *kDotProduct = R"(
    mov.imm r1, 8
    set.vl r1
    mov.imm r2, 1
    set.mr r2
    mov.imm r10, 0x1000
    mov.imm r11, 0x1100
    mov.imm r12, 0x2000
    mov.imm r20, 0
    mov.imm r21, 64
    mov.imm r22, 128
    ld.sram[16] r20, r10, r1
    ld.sram[16] r21, r11, r1
    m.v.mul.add[16] r22, r20, r21
    v.drain
    st.sram[16] r22, r12, r2
    memfence
    halt
)";

RunSpec
dotSpec()
{
    RunSpec spec;
    spec.config = makeSystemConfig(2, 2);
    spec.programs.push_back({0, kDotProduct});
    spec.pokes.push_back({0x1000, {2, 3, 5, 7, 11, 13, 17, 19}});
    spec.pokes.push_back({0x1100, {1, 2, 3, 4, 5, 6, 7, 8}});
    spec.maxCycles = 200'000;
    return spec;
}

/// Split serve() output into its '\n'-terminated response lines.
std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (;;) {
        const std::size_t nl = text.find('\n', start);
        if (nl == std::string::npos)
            break;
        out.push_back(text.substr(start, nl - start));
        start = nl + 1;
    }
    return out;
}

/// Run one request stream through a fresh inline server.
std::vector<std::string>
serveLines(const std::string &requests, const ServeOptions &opts = {})
{
    VipServer server(opts);
    std::istringstream in(requests);
    std::ostringstream out;
    server.serve(in, out);
    return lines(out.str());
}

TEST(RunSpec, JsonRoundTripIsLossless)
{
    RunSpec spec = dotSpec();
    spec.config.fastForward = false;
    spec.config.pe.strictHazards = true;
    spec.regs.push_back({0, 3, 0x1234});

    const std::string text = spec.toJson().str();
    const RunSpec back = RunSpec::fromJson(Json::parse(text));

    EXPECT_TRUE(back == spec);
    EXPECT_EQ(back.fingerprint(), spec.fingerprint());
    EXPECT_EQ(back.toJson().str(), text);
    // And the round-tripped spec simulates identically.
    EXPECT_EQ(runSpec(back).toJson().str(),
              runSpec(spec).toJson().str());
}

TEST(RunSpec, RoundTripSurvivesPerturbedSpecs)
{
    // Property-style sweep: vary every field group and require
    // fromJson(toJson(s)) == s with an equal fingerprint.
    for (unsigned i = 0; i < 8; ++i) {
        RunSpec spec;
        spec.config = makeSystemConfig(1u << (i % 4), 1 + i % 3);
        spec.config.watchdogCycles = 1000 * (i + 1);
        spec.config.fastForward = (i % 2) == 0;
        spec.maxCycles = 1000 + 17 * i;
        spec.programs.push_back({i % 2, "halt\n"});
        spec.pokes.push_back(
            {0x100 * (i + 1),
             {static_cast<std::int16_t>(i), -32768, 32767}});
        spec.regs.push_back({0, i % 8, 0xdeadbeef00ull + i});

        const RunSpec back =
            RunSpec::fromJson(Json::parse(spec.toJson().str()));
        EXPECT_TRUE(back == spec) << "spec " << i;
        EXPECT_EQ(back.fingerprint(), spec.fingerprint());
    }
}

TEST(RunSpec, FromJsonRejectsUnknownAndMalformedFields)
{
    EXPECT_THROW(RunSpec::fromJson(Json::parse("{\"bogus\": 1}")),
                 ConfigError);
    // A poke value outside int16 range must be rejected, not wrapped.
    EXPECT_THROW(
        RunSpec::fromJson(Json::parse(
            "{\"pokes\": [{\"addr\": 0, \"values\": [70000]}]}")),
        ConfigError);
}

TEST(SystemConfig, JsonRoundTripIsLossless)
{
    SystemConfig cfg = makeSystemConfig(8, 4);
    cfg.mem.timing.tCL = 13;
    cfg.mem.pagePolicy = PagePolicy::Closed;
    cfg.pe.lsqEntries = 12;
    cfg.watchdogCycles = 123456;
    cfg.fastForward = false;

    const SystemConfig back =
        SystemConfig::fromJson(Json::parse(cfg.toJson().str()));
    EXPECT_EQ(back.toJson().str(), cfg.toJson().str());
    EXPECT_EQ(back.mem.timing.tCL, 13u);
    EXPECT_EQ(back.mem.pagePolicy, PagePolicy::Closed);
    EXPECT_EQ(back.pe.lsqEntries, 12u);
    EXPECT_FALSE(back.fastForward);
}

TEST(SystemConfig, FromJsonRejectsUnknownKeysWithPath)
{
    try {
        SystemConfig::fromJson(
            Json::parse("{\"mem\": {\"timing\": {\"tCLL\": 9}}}"));
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("mem.timing.tCLL"),
                  std::string::npos)
            << e.what();
    }
}

TEST(SystemConfig, FromJsonDerivesNocGridFromVaults)
{
    const SystemConfig cfg = SystemConfig::fromJson(
        Json::parse("{\"mem\": {\"geom\": {\"vaults\": 16}}}"));
    EXPECT_EQ(cfg.nocX, 4u);
    EXPECT_EQ(cfg.nocY, 4u);
    EXPECT_THROW(SystemConfig::fromJson(Json::parse(
                     "{\"mem\": {\"geom\": {\"vaults\": 6}}}")),
                 ConfigError);
}

TEST(VipServer, CacheHitIsByteIdenticalAndCounted)
{
    Json req = Json::object();
    req.set("run", dotSpec().toJson());
    const std::string line = req.str();

    VipServer server;
    std::istringstream in(line + "\n" + line + "\n" +
                          "{\"cmd\": \"stats\"}\n");
    std::ostringstream out;
    server.serve(in, out);

    const std::vector<std::string> rsp = lines(out.str());
    ASSERT_EQ(rsp.size(), 3u);
    // The hit re-emits the stored bytes: identical, and nothing in
    // the body says it was a hit.
    EXPECT_EQ(rsp[0], rsp[1]);
    EXPECT_EQ(rsp[0].find("cached"), std::string::npos);

    const Json body = Json::parse(rsp[0]);
    EXPECT_EQ(body.at("key").asString().size(), 16u);
    EXPECT_TRUE(body.at("result").at("haltedCleanly").asBool());
    EXPECT_GT(body.at("result").at("cycles").asU64(), 0u);

    EXPECT_EQ(server.requests(), 3u);
    EXPECT_EQ(server.cacheMisses(), 1u);
    EXPECT_EQ(server.cacheHits(), 1u);
    EXPECT_EQ(server.errors(), 0u);

    const Json stats = Json::parse(rsp[2]);
    EXPECT_EQ(stats.at("serve").at("cacheHits").asU64(), 1u);
    EXPECT_EQ(stats.at("serve").at("cacheMisses").asU64(), 1u);
    EXPECT_EQ(stats.at("serve").at("cacheEntries").asU64(), 1u);
}

TEST(VipServer, MalformedRequestsGetErrorsAndLoopSurvives)
{
    Json req = Json::object();
    req.set("run", dotSpec().toJson());

    // Config rejection: unknown key inside the run's config.
    Json bad_spec = Json::parse("{\"config\": {\"wombats\": 3}}");
    Json bad_req = Json::object();
    bad_req.set("run", std::move(bad_spec));

    const std::string requests =
        "this is not json\n" +        // parse failure
        bad_req.str() + "\n" +        // ConfigError
        std::string("{\"cmd\": \"no-such-command\"}\n") +
        req.str() + "\n";             // still served after all that

    VipServer server;
    std::istringstream in(requests);
    std::ostringstream out;
    server.serve(in, out);

    const std::vector<std::string> rsp = lines(out.str());
    ASSERT_EQ(rsp.size(), 4u);
    EXPECT_EQ(Json::parse(rsp[0]).at("error").at("kind").asString(),
              "json");
    EXPECT_EQ(Json::parse(rsp[1]).at("error").at("kind").asString(),
              "config");
    EXPECT_NE(Json::parse(rsp[1])
                  .at("error")
                  .at("message")
                  .asString()
                  .find("wombats"),
              std::string::npos);
    EXPECT_EQ(Json::parse(rsp[2]).at("error").at("kind").asString(),
              "config");
    // The loop survived and the valid request still ran.
    EXPECT_TRUE(Json::parse(rsp[3])
                    .at("result")
                    .at("haltedCleanly")
                    .asBool());
    EXPECT_EQ(server.errors(), 3u);
    EXPECT_EQ(server.cacheMisses(), 1u);
}

TEST(VipServer, AssemblyAndDeadlockFailuresAreStructured)
{
    RunSpec bad_asm = dotSpec();
    bad_asm.programs[0].source = "not_an_instruction r1, r2\n";
    Json asm_req = Json::object();
    asm_req.set("run", bad_asm.toJson());

    RunSpec spin;
    spin.config = makeSystemConfig(1, 1);
    spin.config.watchdogCycles = 2000;
    spin.programs.push_back({0, "spin:\n    jmp spin\n"});
    spin.maxCycles = 1'000'000;
    Json spin_req = Json::object();
    spin_req.set("run", spin.toJson());

    const std::vector<std::string> rsp =
        serveLines(asm_req.str() + "\n" + spin_req.str() + "\n");
    ASSERT_EQ(rsp.size(), 2u);
    EXPECT_EQ(Json::parse(rsp[0]).at("error").at("kind").asString(),
              "assembly");
    // The spinning program either deadlocks (watchdog) or exhausts
    // its budget; both must come back as a normal response, not kill
    // the server. A budget exhaustion is a clean non-halted result.
    const Json second = Json::parse(rsp[1]);
    if (const Json *err = second.find("error")) {
        EXPECT_EQ(err->at("kind").asString(), "deadlock");
    } else {
        EXPECT_FALSE(second.at("result").at("haltedCleanly").asBool());
    }
}

TEST(VipServer, LruEvictsAndCountsWhenBounded)
{
    ServeOptions opts;
    opts.cacheEntries = 1;
    VipServer server(opts);

    RunSpec a = dotSpec();
    RunSpec b = dotSpec();
    b.maxCycles += 1;  // distinct fingerprint
    Json ra = Json::object();
    ra.set("run", a.toJson());
    Json rb = Json::object();
    rb.set("run", b.toJson());

    std::istringstream in(ra.str() + "\n" + rb.str() + "\n" +
                          ra.str() + "\n");
    std::ostringstream out;
    server.serve(in, out);

    ASSERT_EQ(lines(out.str()).size(), 3u);
    EXPECT_EQ(server.cacheMisses(), 3u);  // a evicted by b, re-ran
    EXPECT_EQ(server.cacheHits(), 0u);
    EXPECT_EQ(server.cacheEvictions(), 2u);
}

TEST(VipServer, ShutdownStopsTheLoop)
{
    Json req = Json::object();
    req.set("run", dotSpec().toJson());

    VipServer server;
    std::istringstream in("{\"cmd\": \"shutdown\"}\n" + req.str() +
                          "\n");
    std::ostringstream out;
    server.serve(in, out);

    const std::vector<std::string> rsp = lines(out.str());
    ASSERT_EQ(rsp.size(), 1u);
    EXPECT_TRUE(Json::parse(rsp[0]).at("ok").asBool());
    EXPECT_TRUE(server.shutdownRequested());
    EXPECT_EQ(server.cacheMisses(), 0u);  // the run never dispatched
}

TEST(VipServer, ParallelPoolKeepsRequestOrder)
{
    // Distinct specs through a 4-worker pool must come back in
    // request order with the keys matching each spec's fingerprint.
    ServeOptions opts;
    opts.jobs = 4;
    VipServer server(opts);

    std::string requests;
    std::vector<std::string> want_keys;
    for (unsigned i = 0; i < 8; ++i) {
        RunSpec spec = dotSpec();
        spec.maxCycles = 200'000 + i;
        char buf[20];
        std::snprintf(buf, sizeof(buf), "%016llx",
                      static_cast<unsigned long long>(
                          spec.fingerprint()));
        want_keys.push_back(buf);
        Json req = Json::object();
        req.set("run", spec.toJson());
        requests += req.str() + "\n";
    }

    std::istringstream in(requests);
    std::ostringstream out;
    server.serve(in, out);

    const std::vector<std::string> rsp = lines(out.str());
    ASSERT_EQ(rsp.size(), 8u);
    for (unsigned i = 0; i < 8; ++i) {
        EXPECT_EQ(Json::parse(rsp[i]).at("key").asString(),
                  want_keys[i])
            << "response " << i;
    }
}

} // namespace
} // namespace vip
