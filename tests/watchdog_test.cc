/**
 * @file
 * The run-loop watchdog and the ingress backpressure path under
 * event-horizon fast-forward.
 *
 * The warp clamps its target to the cycle where the watchdog would
 * next look (see VipSystem::run), so a machine that stops making
 * progress throws DeadlockError at the same point whether or not dead
 * cycles are being skipped — warped cycles count toward the
 * no-progress window. The error carries a human-readable diagnosis of
 * the stuck machine state and leaves the system object intact.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "isa/builder.hh"
#include "sim/error.hh"
#include "system/simulation.hh"

namespace vip {
namespace {

/**
 * A program whose PE issues nothing for far longer than the watchdog
 * window: a full-scratchpad vector op occupies the pipe for ~512
 * cycles, and the next vector op stalls on it. With watchdogCycles
 * well below the stall, two consecutive checks see identical progress.
 */
std::vector<Instruction>
stalledProgram()
{
    AsmBuilder b;
    b.movImm(1, 2048);  // vl: 2048 halfwords = the whole scratchpad
    b.setVl(1);
    b.movImm(2, 0);
    b.vv(VecOp::Add, 2, 2, 2);
    b.vv(VecOp::Add, 2, 2, 2);  // stalls ~512 cycles on the pipe
    b.halt();
    return b.finish();
}

TEST(Watchdog, FiresUnderFastForward)
{
    SystemConfig cfg = makeSystemConfig(1, 1);
    cfg.fastForward = true;
    cfg.watchdogCycles = 100;
    VipSystem sys(cfg);
    sys.pe(0).loadProgram(stalledProgram());
    try {
        sys.run(1'000'000);
        FAIL() << "watchdog did not fire";
    } catch (const DeadlockError &e) {
        EXPECT_EQ(e.kind(), "deadlock");
        EXPECT_NE(e.message().find("deadlocked"), std::string::npos);
        // The diagnosis names the stuck PE with its PC, stall reason,
        // and LSQ occupancy.
        const std::string &d = e.detail();
        EXPECT_NE(d.find("pe0"), std::string::npos) << d;
        EXPECT_NE(d.find("stall="), std::string::npos) << d;
        EXPECT_NE(d.find("lsq="), std::string::npos) << d;
    }
}

TEST(Watchdog, FiresWithoutFastForward)
{
    SystemConfig cfg = makeSystemConfig(1, 1);
    cfg.fastForward = false;
    cfg.watchdogCycles = 100;
    VipSystem sys(cfg);
    sys.pe(0).loadProgram(stalledProgram());
    EXPECT_THROW(sys.run(1'000'000), DeadlockError);
}

TEST(Watchdog, SystemSurvivesTheThrow)
{
    // The watchdog reports instead of killing the process; the system
    // object stays usable, so a caller with a bigger budget (or a
    // sweep harness moving to the next point) can carry on.
    SystemConfig cfg = makeSystemConfig(1, 1);
    cfg.watchdogCycles = 100;
    VipSystem sys(cfg);
    sys.pe(0).loadProgram(stalledProgram());
    EXPECT_THROW(sys.run(1'000'000), DeadlockError);
    // Same machine, same stall — a follow-up run() must throw again
    // (not trip the one-thread-per-system assert on a stale flag).
    EXPECT_THROW(sys.run(1'000'000), DeadlockError);
}

TEST(Watchdog, GenerousWindowLetsTheStallResolve)
{
    // The same stall with a normal watchdog budget completes fine —
    // the panic above is the watchdog, not a real wedge.
    SystemConfig cfg = makeSystemConfig(1, 1);
    VipSystem sys(cfg);
    sys.pe(0).loadProgram(stalledProgram());
    sys.run(1'000'000);
    EXPECT_TRUE(sys.allIdle());
}

TEST(IngressBackpressure, DrainOrderSurvivesWarps)
{
    // A depth-1 transaction queue forces arrivals to park in the
    // system's per-vault ingress queue. Four PEs hammering one vault
    // must produce the identical cycle count and statistics tree with
    // and without fast-forward — i.e. a warp never jumps over a drain
    // opportunity and never reorders parked requests.
    auto run = [](bool ff) {
        SystemConfig cfg = makeSystemConfig(1, 4);
        cfg.fastForward = ff;
        cfg.mem.transQueueDepth = 1;
        VipSystem sys(cfg);
        for (unsigned pe = 0; pe < 4; ++pe) {
            AsmBuilder b;
            const Addr base = sys.vaultBase(0) + pe * (1ull << 20);
            b.movImm(1, 0);
            b.movImm(2, 16);    // chunks
            b.movImm(3, static_cast<std::int64_t>(base));
            b.movImm(5, 512);   // stride
            b.movImm(6, 256);   // elements per chunk
            b.movImm(7, 0);
            const auto loop = b.newLabel();
            b.bind(loop);
            b.ldSram(7, 3, 6);
            b.stSram(7, 3, 6);
            b.scalar(ScalarOp::Add, 3, 3, 5);
            b.addImm(1, 1, 1);
            b.branch(BranchCond::Lt, 1, 2, loop);
            b.memfence();
            b.halt();
            sys.pe(pe).loadProgram(b.finish());
        }
        sys.run(50'000'000);
        EXPECT_TRUE(sys.allIdle());
        std::ostringstream os;
        sys.stats().dumpJson(os);
        return std::make_pair(sys.now(), os.str());
    };

    const auto [ff_cycles, ff_stats] = run(true);
    const auto [slow_cycles, slow_stats] = run(false);
    EXPECT_EQ(ff_cycles, slow_cycles);
    EXPECT_EQ(ff_stats, slow_stats);
}

} // namespace
} // namespace vip
