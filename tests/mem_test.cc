/**
 * @file
 * Unit tests for the HMC memory model: address mapping, the sparse
 * backing store, bank timing, page policies, refresh, and the Fig. 5
 * geometry knobs.
 */

#include <gtest/gtest.h>

#include <memory>

#include "mem/addrmap.hh"
#include "mem/hmc.hh"
#include "mem/storage.hh"
#include "sim/rng.hh"

namespace vip {
namespace {

class AddrMapRoundTrip : public ::testing::TestWithParam<AddrMap>
{
};

TEST_P(AddrMapRoundTrip, EncodeDecodeIdentity)
{
    DramGeometry geom;
    const AddressMapper mapper(geom, GetParam());
    Rng rng(5);
    for (unsigned n = 0; n < 2000; ++n) {
        const Addr addr = rng.nextBelow(geom.capacity());
        const DramCoord c = mapper.decode(addr);
        EXPECT_EQ(mapper.encode(c), addr);
        EXPECT_LT(c.vault, geom.vaults);
        EXPECT_LT(c.bank, geom.banksPerVault);
        EXPECT_LT(c.row, geom.rowsPerBank);
        EXPECT_LT(c.col, geom.colsPerRow());
        EXPECT_LT(c.offset, geom.colBytes);
    }
}

INSTANTIATE_TEST_SUITE_P(BothSchemes, AddrMapRoundTrip,
                         ::testing::Values(AddrMap::VaultRowBankCol,
                                           AddrMap::RowBankColVault));

TEST(AddrMap, VaultHighGivesContiguousVaultRegions)
{
    DramGeometry geom;
    const AddressMapper mapper(geom, AddrMap::VaultRowBankCol);
    for (unsigned v = 0; v < geom.vaults; ++v) {
        const Addr base = mapper.vaultBase(v);
        EXPECT_EQ(mapper.decode(base).vault, v);
        EXPECT_EQ(mapper.decode(base + geom.bytesPerVault() - 1).vault,
                  v);
    }
}

TEST(AddrMap, VaultLowInterleavesColumns)
{
    DramGeometry geom;
    const AddressMapper mapper(geom, AddrMap::RowBankColVault);
    // Consecutive 32 B columns land in consecutive vaults.
    EXPECT_EQ(mapper.decode(0).vault, 0u);
    EXPECT_EQ(mapper.decode(geom.colBytes).vault, 1u);
    EXPECT_EQ(mapper.decode(2 * geom.colBytes).vault, 2u);
}

TEST(Geometry, ScalingPreservesCapacity)
{
    DramGeometry geom;
    const auto cap = geom.capacity();
    DramGeometry more = geom;
    more.scaleBanks(true);
    EXPECT_EQ(more.capacity(), cap);
    EXPECT_EQ(more.banksPerVault, geom.banksPerVault * 4);
    DramGeometry fewer = geom;
    fewer.scaleBanks(false);
    EXPECT_EQ(fewer.capacity(), cap);
    DramGeometry wide = geom;
    wide.scaleRowWidth(true);
    EXPECT_EQ(wide.capacity(), cap);
    EXPECT_EQ(wide.rowBytes, geom.rowBytes * 4);
    DramGeometry narrow = geom;
    narrow.scaleRowWidth(false);
    EXPECT_EQ(narrow.capacity(), cap);
}

TEST(Storage, ZeroFilledAndSparse)
{
    DramStorage storage;
    EXPECT_EQ(storage.load<std::uint64_t>(123456789), 0u);
    EXPECT_EQ(storage.touchedPages(), 0u);
    storage.store<std::uint32_t>(1 << 30, 0xdeadbeef);
    EXPECT_EQ(storage.load<std::uint32_t>(1 << 30), 0xdeadbeefu);
    EXPECT_EQ(storage.touchedPages(), 1u);
}

TEST(Storage, CrossPageTransfers)
{
    DramStorage storage;
    std::vector<std::uint8_t> data(10000);
    Rng rng(6);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.nextBelow(256));
    const Addr base = DramStorage::kPageBytes - 1234;
    storage.write(base, data.data(), data.size());
    std::vector<std::uint8_t> back(data.size());
    storage.read(base, back.data(), back.size());
    EXPECT_EQ(back, data);
}

/** Harness: drive one vault until a request completes. */
struct VaultHarness
{
    explicit VaultHarness(const MemConfig &cfg)
        : config(cfg), mapper(cfg.geom, cfg.addrMap),
          vault(0, cfg, mapper, nullptr)
    {}

    /** Issue a read and return its completion latency. */
    Cycles
    readLatency(Addr addr, unsigned bytes = 32)
    {
        Cycles done = 0;
        auto req = std::make_unique<MemRequest>();
        req->addr = addr;
        req->bytes = bytes;
        req->issuedAt = now;
        req->onComplete = [&](MemRequest &r) {
            done = r.completedAt - r.issuedAt;
        };
        EXPECT_TRUE(vault.enqueue(std::move(req)));
        while (done == 0 && now < 100000)
            vault.tick(now++);
        return done;
    }

    MemConfig config;
    AddressMapper mapper;
    VaultController vault;
    Cycles now = 0;
};

TEST(Vault, ColdReadLatencyIsActPlusCasPlusBurst)
{
    MemConfig cfg;
    cfg.geom.vaults = 1;
    VaultHarness h(cfg);
    const Cycles lat = h.readLatency(64);
    // tRCD + tCL + tBurst, plus scheduler cycles.
    const Cycles floor = cfg.timing.tRCD + cfg.timing.tCL +
                         cfg.timing.tBurst;
    EXPECT_GE(lat, floor);
    EXPECT_LE(lat, floor + 8);
}

TEST(Vault, OpenPageHitIsFasterThanMiss)
{
    MemConfig cfg;
    cfg.geom.vaults = 1;
    VaultHarness h(cfg);
    const Cycles miss = h.readLatency(0);
    const Cycles hit = h.readLatency(32);  // same row, next column
    EXPECT_LT(hit, miss);
    EXPECT_EQ(h.vault.stats().rowHits.value(), 2u)
        << "second access and one column of the first hit the open row";
}

TEST(Vault, ClosedPagePolicyReopensRows)
{
    MemConfig cfg;
    cfg.geom.vaults = 1;
    cfg.pagePolicy = PagePolicy::Closed;
    VaultHarness h(cfg);
    const Cycles first = h.readLatency(0);
    const Cycles second = h.readLatency(32);
    // With auto-precharge and an empty queue, the second access must
    // activate again: no faster than the first.
    EXPECT_GE(second + 2, first);
    EXPECT_GE(h.vault.stats().rowMisses.value(), 2u);
}

TEST(Vault, MultiColumnRequestCompletesOnce)
{
    MemConfig cfg;
    cfg.geom.vaults = 1;
    VaultHarness h(cfg);
    unsigned completions = 0;
    auto req = std::make_unique<MemRequest>();
    req->addr = 16;       // misaligned: spans 9 columns
    req->bytes = 270;
    req->onComplete = [&](MemRequest &) { ++completions; };
    ASSERT_TRUE(h.vault.enqueue(std::move(req)));
    while (!h.vault.idle())
        h.vault.tick(h.now++);
    EXPECT_EQ(completions, 1u);
    EXPECT_EQ(h.vault.stats().colCommands.value(), 9u);
    EXPECT_EQ(h.vault.stats().readBytes.value(), 270u);
}

TEST(Vault, RefreshFiresAtTrefi)
{
    MemConfig cfg;
    cfg.geom.vaults = 1;
    VaultHarness h(cfg);
    for (Cycles t = 0; t < 3 * cfg.timing.tREFI + 10; ++t)
        h.vault.tick(h.now++);
    EXPECT_EQ(h.vault.stats().refreshes.value(), 3u);
}

TEST(Vault, QueueBackpressure)
{
    MemConfig cfg;
    cfg.geom.vaults = 1;
    cfg.transQueueDepth = 4;
    VaultHarness h(cfg);
    unsigned accepted = 0;
    for (unsigned i = 0; i < 8; ++i) {
        auto req = std::make_unique<MemRequest>();
        req->addr = i * 4096;
        req->bytes = 32;
        if (h.vault.enqueue(std::move(req)))
            ++accepted;
    }
    EXPECT_EQ(accepted, 4u);
    EXPECT_FALSE(h.vault.canAccept());
    while (!h.vault.idle())
        h.vault.tick(h.now++);
    EXPECT_TRUE(h.vault.canAccept());
}

TEST(Hmc, RoutesToHomeVaultAndTracksBytes)
{
    MemConfig cfg;
    HmcStack hmc(cfg);
    const Addr in_vault3 = hmc.mapper().vaultBase(3) + 1000;
    EXPECT_EQ(hmc.homeVault(in_vault3), 3u);

    bool done = false;
    auto req = std::make_unique<MemRequest>();
    req->addr = in_vault3;
    req->bytes = 64;
    req->isWrite = true;
    req->onComplete = [&](MemRequest &) { done = true; };
    ASSERT_TRUE(hmc.enqueue(std::move(req)));
    Cycles now = 0;
    while (!done && now < 10000)
        hmc.tick(now++);
    EXPECT_TRUE(done);
    EXPECT_EQ(hmc.vault(3).stats().writeBytes.value(), 64u);
    EXPECT_EQ(hmc.totalBytesMoved(), 64u);
}

TEST(Hmc, MoreBanksImproveRandomAccessThroughput)
{
    // The Fig. 5 "more/fewer ranks" mechanism: random single-column
    // reads across banks complete sooner with more banks.
    auto run = [](int scale) {
        MemConfig cfg;
        cfg.geom.vaults = 1;
        if (scale > 0)
            cfg.geom.scaleBanks(true);
        else if (scale < 0)
            cfg.geom.scaleBanks(false);
        VaultHarness h(cfg);
        Rng rng(7);
        unsigned done = 0;
        const unsigned N = 64;
        for (unsigned i = 0; i < N; ++i) {
            auto req = std::make_unique<MemRequest>();
            req->addr = (rng.nextBelow(1 << 20)) & ~31ull;
            req->bytes = 32;
            req->onComplete = [&](MemRequest &) { ++done; };
            while (!h.vault.canAccept())
                h.vault.tick(h.now++);
            EXPECT_TRUE(h.vault.enqueue(std::move(req)));
        }
        while (done < N)
            h.vault.tick(h.now++);
        return h.now;
    };
    const Cycles fewer = run(-1);
    const Cycles base = run(0);
    const Cycles more = run(+1);
    EXPECT_LT(more, fewer);
    EXPECT_LE(base, fewer);
}

TEST(Timing, RefreshScalingFollowsJedecRatios)
{
    DramTiming t1;
    DramTiming t2 = t1;
    t2.scaleRefresh(2);
    DramTiming t4 = t1;
    t4.scaleRefresh(4);
    EXPECT_EQ(t2.tREFI, 2 * t1.tREFI);
    EXPECT_EQ(t4.tREFI, 4 * t1.tREFI);
    // tRFC grows sublinearly: longer blocks, but lower duty overhead.
    EXPECT_GT(t2.tRFC, t1.tRFC);
    EXPECT_GT(t4.tRFC, t2.tRFC);
    EXPECT_LT(t4.tRFC, 4 * t1.tRFC);
    const double duty1 = static_cast<double>(t1.tRFC) / t1.tREFI;
    const double duty4 = static_cast<double>(t4.tRFC) / t4.tREFI;
    EXPECT_LT(duty4, duty1);
}

} // namespace
} // namespace vip
