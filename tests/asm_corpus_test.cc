/**
 * @file
 * The shipped assembly corpus (examples/asm/) must assemble, run to
 * completion on one PE, and produce correct results — keeping the
 * vip-run documentation honest.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "isa/assembler.hh"
#include "kernels/runner.hh"
#include "workloads/fixed.hh"

namespace vip {
namespace {

std::vector<Instruction>
assembleFile(const std::string &name)
{
    std::ifstream in(std::string(VIP_SOURCE_DIR "/examples/asm/") + name);
    EXPECT_TRUE(in.good()) << name;
    std::ostringstream ss;
    ss << in.rdbuf();
    return assemble(ss.str());
}

TEST(AsmCorpus, DotProduct)
{
    SystemConfig cfg = makeSystemConfig(1, 1);
    cfg.pe.strictHazards = true;
    VipSystem sys(cfg);
    std::int64_t want = 0;
    for (unsigned i = 0; i < 8; ++i) {
        const Fx16 a = static_cast<Fx16>(i + 1);
        const Fx16 b = static_cast<Fx16>(10 * i - 3);
        sys.dram().store<Fx16>(0x1000 + 2 * i, a);
        sys.dram().store<Fx16>(0x1100 + 2 * i, b);
        want += static_cast<std::int64_t>(a) * b;
    }
    sys.pe(0).loadProgram(assembleFile("dot_product.s"));
    sys.run(1'000'000);
    ASSERT_TRUE(sys.allIdle());
    EXPECT_EQ(sys.dram().load<Fx16>(0x2000), sat16(want));
}

TEST(AsmCorpus, BpUpdate)
{
    SystemConfig cfg = makeSystemConfig(1, 1);
    cfg.pe.strictHazards = true;
    VipSystem sys(cfg);
    const unsigned L = 8;
    Fx16 theta[8];
    Fx16 smooth[64];
    for (unsigned l = 0; l < L; ++l) {
        const Fx16 data = static_cast<Fx16>(3 * l);
        const Fx16 ma = static_cast<Fx16>(7 - l);
        const Fx16 mb = static_cast<Fx16>(l * l % 11);
        const Fx16 mc = 2;
        sys.dram().store<Fx16>(0x1000 + 2 * l, data);
        sys.dram().store<Fx16>(0x1100 + 2 * l, ma);
        sys.dram().store<Fx16>(0x1200 + 2 * l, mb);
        sys.dram().store<Fx16>(0x1300 + 2 * l, mc);
        theta[l] = addSat(addSat(addSat(data, ma), mb), mc);
    }
    for (unsigned i = 0; i < 64; ++i) {
        smooth[i] = static_cast<Fx16>((i * 5) % 13);
        sys.dram().store<Fx16>(0x2000 + 2 * i, smooth[i]);
    }
    sys.pe(0).loadProgram(assembleFile("bp_update.s"));
    sys.run(1'000'000);
    ASSERT_TRUE(sys.allIdle());
    for (unsigned lo = 0; lo < L; ++lo) {
        EXPECT_EQ(sys.dram().load<Fx16>(0x3000 + 2 * lo),
                  addMinReduce(smooth + lo * L, theta, L))
            << lo;
    }
    EXPECT_EQ(sys.pe(0).stats().timingHazards.value(), 0u);
}

} // namespace
} // namespace vip
