/**
 * @file
 * Verification of the generated convolution, pooling, and
 * fully-connected kernels against the reference implementations
 * (Sec. V-A methodology), with strict hazard checking throughout.
 */

#include <gtest/gtest.h>

#include "kernels/conv_kernel.hh"
#include "kernels/fc_kernel.hh"
#include "kernels/pool_kernel.hh"
#include "kernels/runner.hh"
#include "sim/rng.hh"
#include "workloads/nn.hh"

namespace vip {
namespace {

FeatureMap
randomFmap(unsigned c, unsigned h, unsigned w, Rng &rng, int magnitude)
{
    FeatureMap f(c, h, w);
    for (auto &v : f.data)
        v = static_cast<Fx16>(rng.nextRange(-magnitude, magnitude));
    return f;
}

TEST(ConvKernel, SingleShardMatchesReference)
{
    const unsigned C = 8, H = 10, W = 12, OC = 4, K = 3;
    Rng rng(11);
    FeatureMap in = randomFmap(C, H, W, rng, 10);
    const auto filters = randomWeights(
        static_cast<std::size_t>(OC) * C * K * K, rng, 3);
    const auto bias = randomWeights(OC, rng, 20);

    const FeatureMap want = convLayerVip(in, filters, bias, OC, K, C);
    // With these magnitudes nothing saturates, so the plain reference
    // agrees too — a cross-check of the tiled semantics.
    ASSERT_EQ(want.data, convLayer(in, filters, bias, OC, K).data);

    SystemConfig cfg = makeSystemConfig(1, 1);
    cfg.pe.strictHazards = true;
    VipSystem sys(cfg);

    const Addr base = sys.vaultBase(0);
    FmapDramLayout in_lay(base, C, H, W, 1);
    FmapDramLayout out_lay(in_lay.end() + 64, OC, H, W, 0);
    const Addr filt_addr = out_lay.end() + 64;
    const auto blob = packFilters(filters, C, K, 0, OC, 0, C);
    sys.dram().write(filt_addr, blob.data(), blob.size() * 2);
    const Addr bias_addr = filt_addr + blob.size() * 2 + 64;
    sys.dram().write(bias_addr, bias.data(), bias.size() * 2);
    in_lay.upload(in, sys.dram());

    ConvJob job;
    job.in = &in_lay;
    job.out = &out_lay;
    job.filterBlob = filt_addr;
    job.biasBlob = bias_addr;
    job.zShard = C;
    job.filters = OC;
    job.rowBegin = 0;
    job.rowEnd = H;
    job.width = W;
    sys.pe(0).loadProgram(genConvPass(job));
    sys.run(50'000'000);
    ASSERT_TRUE(sys.allIdle());

    const FeatureMap got = out_lay.download(sys.dram());
    for (unsigned c = 0; c < OC; ++c) {
        for (unsigned y = 0; y < H; ++y) {
            for (unsigned x = 0; x < W; ++x) {
                ASSERT_EQ(want.at(c, y, x), got.at(c, y, x))
                    << "c=" << c << " y=" << y << " x=" << x;
            }
        }
    }
    EXPECT_EQ(sys.pe(0).stats().timingHazards.value(), 0u);
}

TEST(ConvKernel, FilterGroupsAndRowSlices)
{
    // Two filter groups x two row slices on four PEs of one vault.
    const unsigned C = 8, H = 8, W = 10, OC = 8, K = 3;
    Rng rng(12);
    FeatureMap in = randomFmap(C, H, W, rng, 10);
    const auto filters = randomWeights(
        static_cast<std::size_t>(OC) * C * K * K, rng, 3);
    const auto bias = randomWeights(OC, rng, 20);
    const FeatureMap want = convLayerVip(in, filters, bias, OC, K, C);

    SystemConfig cfg = makeSystemConfig(1, 4);
    cfg.pe.strictHazards = true;
    VipSystem sys(cfg);
    const Addr base = sys.vaultBase(0);
    FmapDramLayout in_lay(base, C, H, W, 1);
    FmapDramLayout out_lay(in_lay.end() + 64, OC, H, W, 0);
    in_lay.upload(in, sys.dram());

    Addr cursor = out_lay.end() + 64;
    unsigned pe = 0;
    for (unsigned g = 0; g < 2; ++g) {
        const auto blob = packFilters(filters, C, K, g * 4, 4, 0, C);
        sys.dram().write(cursor, blob.data(), blob.size() * 2);
        const Addr blob_addr = cursor;
        cursor += blob.size() * 2 + 64;
        sys.dram().write(cursor, bias.data() + g * 4, 4 * 2);
        const Addr bias_addr = cursor;
        cursor += 64;
        for (unsigned slice = 0; slice < 2; ++slice) {
            ConvJob job;
            job.in = &in_lay;
            job.out = &out_lay;
            job.filterBlob = blob_addr;
            job.biasBlob = bias_addr;
            job.zShard = C;
            job.filters = 4;
            job.filterOffset = g * 4;
            job.rowBegin = slice * (H / 2);
            job.rowEnd = (slice + 1) * (H / 2);
            job.width = W;
            sys.pe(pe).loadProgram(genConvPass(job));
            ++pe;
        }
    }
    sys.run(50'000'000);
    ASSERT_TRUE(sys.allIdle());
    EXPECT_EQ(want.data, out_lay.download(sys.dram()).data);
}

TEST(ConvKernel, ZShardedWithAccumulationPass)
{
    const unsigned C = 16, H = 6, W = 8, OC = 4, K = 3;
    const unsigned ZS = 8;  // two shards
    Rng rng(13);
    FeatureMap in = randomFmap(C, H, W, rng, 8);
    const auto filters = randomWeights(
        static_cast<std::size_t>(OC) * C * K * K, rng, 3);
    const auto bias = randomWeights(OC, rng, 20);
    const FeatureMap want = convLayerVip(in, filters, bias, OC, K, ZS);

    SystemConfig cfg = makeSystemConfig(1, 4);
    cfg.pe.strictHazards = true;
    VipSystem sys(cfg);
    const Addr base = sys.vaultBase(0);
    FmapDramLayout in_lay(base, C, H, W, 1);
    FmapDramLayout part0(in_lay.end() + 64, OC, H, W, 0);
    FmapDramLayout part1(part0.end() + 64, OC, H, W, 0);
    FmapDramLayout out_lay(part1.end() + 64, OC, H, W, 0);
    in_lay.upload(in, sys.dram());

    Addr cursor = out_lay.end() + 64;
    const FmapDramLayout *parts[2] = {&part0, &part1};
    for (unsigned s = 0; s < 2; ++s) {
        const auto blob = packFilters(filters, C, K, 0, OC, s * ZS, ZS);
        sys.dram().write(cursor, blob.data(), blob.size() * 2);
        ConvJob job;
        job.in = &in_lay;
        job.out = parts[s];
        job.filterBlob = cursor;
        job.zShard = ZS;
        job.zOffset = s * ZS;
        job.filters = OC;
        job.rowBegin = 0;
        job.rowEnd = H;
        job.width = W;
        job.finalize = false;
        cursor += blob.size() * 2 + 64;
        sys.pe(s).loadProgram(genConvPass(job));
    }

    // Run the partial passes to completion, then accumulate.
    sys.run(50'000'000);
    ASSERT_TRUE(sys.allIdle());

    const unsigned chunk = W * OC;  // one row per chunk
    const auto bias_row = makeBiasRow(bias, chunk);
    sys.dram().write(cursor, bias_row.data(), bias_row.size() * 2);
    ConvAccumJob acc;
    acc.partials = {&part0, &part1};
    acc.out = &out_lay;
    acc.biasRowBlob = cursor;
    acc.rowBegin = 0;
    acc.rowEnd = H;
    acc.chunkElems = chunk;
    acc.chunksPerRow = 1;
    sys.pe(2).loadProgram(genConvAccum(acc));
    sys.run(50'000'000);
    ASSERT_TRUE(sys.allIdle());

    EXPECT_EQ(want.data, out_lay.download(sys.dram()).data);
    for (unsigned pe = 0; pe < 3; ++pe)
        EXPECT_EQ(sys.pe(pe).stats().timingHazards.value(), 0u) << pe;
}

TEST(PoolKernel, MatchesReference)
{
    const unsigned C = 16, H = 8, W = 12;
    Rng rng(14);
    FeatureMap in = randomFmap(C, H, W, rng, 1000);
    const FeatureMap want = maxPool(in, 2);

    SystemConfig cfg = makeSystemConfig(1, 1);
    cfg.pe.strictHazards = true;
    VipSystem sys(cfg);
    FmapDramLayout in_lay(sys.vaultBase(0), C, H, W, 0);
    FmapDramLayout out_lay(in_lay.end() + 64, C, H / 2, W / 2, 0);
    in_lay.upload(in, sys.dram());

    PoolJob job;
    job.in = &in_lay;
    job.out = &out_lay;
    job.rowBegin = 0;
    job.rowEnd = H / 2;
    job.width = W / 2;
    job.chunk = 8;  // two chunks per pixel
    sys.pe(0).loadProgram(genPool(job));
    sys.run(50'000'000);
    ASSERT_TRUE(sys.allIdle());
    EXPECT_EQ(want.data, out_lay.download(sys.dram()).data);
    EXPECT_EQ(sys.pe(0).stats().timingHazards.value(), 0u);
}

TEST(FcKernel, SinglePeFinalizedMatchesReference)
{
    const unsigned IN = 96, OUT = 64;
    Rng rng(15);
    const auto input = randomWeights(IN, rng, 30);
    const auto weights = randomWeights(
        static_cast<std::size_t>(OUT) * IN, rng, 5);
    const auto bias = randomWeights(OUT, rng, 50);
    const auto want = fcLayerSegmented(input, weights, bias, OUT, 1);

    SystemConfig cfg = makeSystemConfig(1, 1);
    cfg.pe.strictHazards = true;
    VipSystem sys(cfg);
    const Addr base = sys.vaultBase(0);
    const Addr w_addr = base;
    const Addr in_addr = w_addr + weights.size() * 2 + 64;
    const Addr bias_addr = in_addr + input.size() * 2 + 64;
    const Addr out_addr = bias_addr + bias.size() * 2 + 64;
    sys.dram().write(w_addr, weights.data(), weights.size() * 2);
    sys.dram().write(in_addr, input.data(), input.size() * 2);
    sys.dram().write(bias_addr, bias.data(), bias.size() * 2);

    FcPartialJob job;
    job.weightBase = w_addr;
    job.inputBase = in_addr;
    job.outBase = out_addr;
    job.biasBase = bias_addr;
    job.inputs = IN;
    job.segLen = IN;
    job.rowBegin = 0;
    job.rowEnd = OUT;
    job.outBlock = 32;
    job.finalize = true;
    sys.pe(0).loadProgram(genFcPartial(job));
    sys.run(50'000'000);
    ASSERT_TRUE(sys.allIdle());

    std::vector<Fx16> got(OUT);
    sys.dram().read(out_addr, got.data(), got.size() * 2);
    EXPECT_EQ(want, got);
    EXPECT_EQ(sys.pe(0).stats().timingHazards.value(), 0u);
}

TEST(FcKernel, SegmentedWithAccumulationMatchesReference)
{
    const unsigned IN = 128, OUT = 64, SEGS = 4;
    Rng rng(16);
    const auto input = randomWeights(IN, rng, 30);
    const auto weights = randomWeights(
        static_cast<std::size_t>(OUT) * IN, rng, 5);
    const auto bias = randomWeights(OUT, rng, 50);
    const auto want = fcLayerSegmented(input, weights, bias, OUT, SEGS);

    SystemConfig cfg = makeSystemConfig(1, 4);
    cfg.pe.strictHazards = true;
    VipSystem sys(cfg);
    const Addr base = sys.vaultBase(0);
    const Addr w_addr = base;
    const Addr in_addr = w_addr + weights.size() * 2 + 64;
    const Addr bias_addr = in_addr + input.size() * 2 + 64;
    const Addr part_base = bias_addr + bias.size() * 2 + 64;
    const std::uint64_t part_stride = OUT * 2 + 64;
    const Addr out_addr = part_base + part_stride * (SEGS + 1);
    sys.dram().write(w_addr, weights.data(), weights.size() * 2);
    sys.dram().write(in_addr, input.data(), input.size() * 2);
    sys.dram().write(bias_addr, bias.data(), bias.size() * 2);

    for (unsigned s = 0; s < SEGS; ++s) {
        FcPartialJob job;
        job.weightBase = w_addr;
        job.inputBase = in_addr;
        job.outBase = part_base + s * part_stride;
        job.inputs = IN;
        job.segOffset = s * (IN / SEGS);
        job.segLen = IN / SEGS;
        job.rowBegin = 0;
        job.rowEnd = OUT;
        job.outBlock = 32;
        sys.pe(s).loadProgram(genFcPartial(job));
    }
    sys.run(50'000'000);
    ASSERT_TRUE(sys.allIdle());

    FcAccumJob acc;
    acc.partialBase0 = part_base;
    acc.strideOuter = part_stride;
    acc.countOuter = SEGS;
    acc.strideInner = 0;
    acc.countInner = 1;
    acc.outBase = out_addr;
    acc.biasBase = bias_addr;
    acc.outBegin = 0;
    acc.outEnd = OUT;
    acc.chunk = 32;
    sys.pe(0).loadProgram(genFcAccum(acc));
    sys.run(50'000'000);
    ASSERT_TRUE(sys.allIdle());

    std::vector<Fx16> got(OUT);
    sys.dram().read(out_addr, got.data(), got.size() * 2);
    EXPECT_EQ(want, got);
}

} // namespace
} // namespace vip
