/**
 * @file
 * Tests for the host/kernel shared DRAM layouts and filter packing.
 */

#include <gtest/gtest.h>

#include "kernels/conv_kernel.hh"
#include "kernels/layout.hh"
#include <set>
#include "sim/rng.hh"

namespace vip {
namespace {

TEST(MrfLayout, MessagesRoundTrip)
{
    MrfProblem p;
    p.width = 7;
    p.height = 5;
    p.labels = 4;
    p.smoothCost.assign(16, 1);
    p.dataCost.assign(7 * 5 * 4, 2);

    DramStorage dram;
    MrfDramLayout layout(1 << 20, 7, 5, 4);
    layout.upload(p, dram);

    Rng rng(10);
    BpState bp(p);
    for (unsigned d = 0; d < NumMsgDirs; ++d) {
        for (unsigned y = 0; y < 5; ++y) {
            for (unsigned x = 0; x < 7; ++x) {
                for (unsigned l = 0; l < 4; ++l) {
                    bp.msgAt(static_cast<MsgDir>(d), x, y)[l] =
                        static_cast<Fx16>(rng.nextRange(-99, 99));
                }
            }
        }
    }
    layout.uploadMessages(bp, dram);

    BpState back(p);
    layout.downloadMessages(back, dram);
    for (unsigned d = 0; d < NumMsgDirs; ++d) {
        for (unsigned y = 0; y < 5; ++y) {
            for (unsigned x = 0; x < 7; ++x) {
                for (unsigned l = 0; l < 4; ++l) {
                    EXPECT_EQ(back.msgAt(static_cast<MsgDir>(d), x, y)[l],
                              bp.msgAt(static_cast<MsgDir>(d), x, y)[l]);
                }
            }
        }
    }
}

TEST(MrfLayout, FieldsDoNotOverlapAndPadIsZero)
{
    DramStorage dram;
    MrfDramLayout layout(0, 6, 4, 8);
    // Distinct addresses for every (field, pixel).
    std::set<Addr> seen;
    for (unsigned y = 0; y < 4; ++y) {
        for (unsigned x = 0; x < 6; ++x) {
            EXPECT_TRUE(seen.insert(layout.dataAddr(x, y)).second);
            for (unsigned d = 0; d < NumMsgDirs; ++d) {
                EXPECT_TRUE(
                    seen.insert(layout.msgAddr(static_cast<MsgDir>(d),
                                               x, y))
                        .second);
            }
        }
    }
    EXPECT_LT(layout.smoothAddr(), layout.end());
    EXPECT_GE(layout.smoothAddr(), *seen.rbegin());
    // Prefetch pad: 4 rows/columns on each side stay inside the
    // footprint.
    const std::uint64_t row = layout.rowStrideBytes();
    EXPECT_GE(layout.dataAddr(0, 0), 4 * row);
}

class FmapLayoutOrder : public ::testing::TestWithParam<bool>
{
};

TEST_P(FmapLayoutOrder, RoundTripsAndStrides)
{
    const bool col_major = GetParam();
    DramStorage dram;
    FmapDramLayout layout(4096, 6, 5, 7, 1, col_major);

    Rng rng(11);
    FeatureMap f(6, 5, 7);
    for (auto &v : f.data)
        v = static_cast<Fx16>(rng.nextRange(-500, 500));
    layout.upload(f, dram);
    const FeatureMap back = layout.download(dram);
    EXPECT_EQ(back.data, f.data);

    EXPECT_EQ(layout.at(1, 0) - layout.at(0, 0),
              layout.colStrideBytes());
    EXPECT_EQ(layout.at(0, 1) - layout.at(0, 0),
              layout.rowStrideBytes());
    EXPECT_EQ(layout.at(0, 0, 1) - layout.at(0, 0), 2u);
    if (col_major) {
        EXPECT_EQ(layout.rowStrideBytes(), 6u * 2);  // channels * 2
    } else {
        EXPECT_EQ(layout.colStrideBytes(), 6u * 2);
    }
    // Halo cells are addressable and zero.
    EXPECT_EQ(dram.load<Fx16>(layout.atSigned(-1, -1)), 0);
}

INSTANTIATE_TEST_SUITE_P(BothOrders, FmapLayoutOrder,
                         ::testing::Values(false, true));

TEST(PackFilters, MatchesDirectIndexing)
{
    const unsigned OC = 4, IC = 6, K = 3;
    std::vector<Fx16> filters(OC * IC * K * K);
    for (unsigned i = 0; i < filters.size(); ++i)
        filters[i] = static_cast<Fx16>(i);

    const unsigned F = 2, z_off = 2, zs = 4, f_off = 1;
    const auto blob = packFilters(filters, IC, K, f_off, F, z_off, zs);
    ASSERT_EQ(blob.size(), static_cast<std::size_t>(K) * F * K * zs);

    // blob[kx][f][ky][zc] == filters[f_off+f][z_off+zc][ky][kx]
    std::size_t idx = 0;
    for (unsigned kx = 0; kx < K; ++kx) {
        for (unsigned f = 0; f < F; ++f) {
            for (unsigned ky = 0; ky < K; ++ky) {
                for (unsigned zc = 0; zc < zs; ++zc) {
                    const unsigned oc = f_off + f, ic = z_off + zc;
                    const Fx16 want =
                        filters[((static_cast<std::size_t>(oc) * IC +
                                  ic) *
                                     K +
                                 ky) *
                                    K +
                                kx];
                    EXPECT_EQ(blob[idx], want)
                        << "kx=" << kx << " f=" << f << " ky=" << ky
                        << " zc=" << zc;
                    ++idx;
                }
            }
        }
    }
}

TEST(BiasRow, RepeatsChannelVector)
{
    const std::vector<Fx16> bias = {10, 20, 30};
    const auto row = makeBiasRow(bias, 9);
    ASSERT_EQ(row.size(), 9u);
    for (unsigned i = 0; i < 9; ++i)
        EXPECT_EQ(row[i], bias[i % 3]);
}

} // namespace
} // namespace vip
