/**
 * @file
 * Fast-forward equivalence harness: the event-horizon warp in
 * VipSystem::run() (sim/clocked.hh) must be invisible in every
 * observable — final cycle count, the complete dumped statistics tree
 * (JSON, stable key order), and DRAM contents — across representative
 * kernels. Each scenario drives the same program on two machines, one
 * warping and one ticking every cycle, and requires bit-identical
 * results.
 */

#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <string>

#include "isa/builder.hh"
#include "kernels/bp_kernel.hh"
#include "kernels/conv_kernel.hh"
#include "kernels/fc_kernel.hh"
#include "kernels/layout.hh"
#include "kernels/runner.hh"
#include "sim/rng.hh"
#include "workloads/mrf.hh"
#include "workloads/nn.hh"

namespace vip {
namespace {

/** Everything the warp must not perturb, plus what it skipped. */
struct Observed
{
    Cycles cycles = 0;
    std::string statsJson;
    std::uint64_t dramDigest = 0;
    Cycles skipped = 0;
    std::uint64_t warps = 0;
};

/**
 * Build a system from @p cfg with fast-forward set to @p ff, hand it
 * to @p drive (which stages DRAM, loads programs, and runs — possibly
 * in several phases), then record the observables.
 */
Observed
observe(SystemConfig cfg, bool ff,
        const std::function<void(VipSystem &)> &drive)
{
    cfg.fastForward = ff;
    VipSystem sys(cfg);
    drive(sys);
    EXPECT_TRUE(sys.allIdle());
    Observed o;
    o.cycles = sys.now();
    std::ostringstream os;
    sys.stats().dumpJson(os);
    o.statsJson = os.str();
    o.dramDigest = sys.dram().fingerprint();
    o.skipped = sys.fastForwardStats().skippedCycles;
    o.warps = sys.fastForwardStats().warps;
    return o;
}

/**
 * The core assertion: warped and unwarped runs are indistinguishable.
 * @p expect_skips additionally requires the warped run to actually
 * exercise the fast path (memory-bound scenarios always do).
 */
void
expectEquivalent(const SystemConfig &cfg,
                 const std::function<void(VipSystem &)> &drive,
                 bool expect_skips = true)
{
    const Observed warped = observe(cfg, true, drive);
    const Observed ticked = observe(cfg, false, drive);

    EXPECT_EQ(warped.cycles, ticked.cycles);
    EXPECT_EQ(warped.statsJson, ticked.statsJson);
    EXPECT_EQ(warped.dramDigest, ticked.dramDigest);

    EXPECT_EQ(ticked.skipped, 0u);
    EXPECT_EQ(ticked.warps, 0u);
    if (expect_skips) {
        EXPECT_GT(warped.skipped, 0u);
        EXPECT_GT(warped.warps, 0u);
    }
}

MrfProblem
makeProblem(unsigned w, unsigned h, unsigned labels, std::uint64_t seed)
{
    Rng rng(seed);
    MrfProblem p;
    p.width = w;
    p.height = h;
    p.labels = labels;
    p.smoothCost = truncatedLinearSmoothness(labels, 3, 12);
    p.dataCost.resize(static_cast<std::size_t>(w) * h * labels);
    for (auto &c : p.dataCost)
        c = static_cast<Fx16>(rng.nextBelow(25));
    return p;
}

TEST(FfEquivalence, BpSweepFourPes)
{
    const unsigned W = 12, H = 8, L = 8;
    const MrfProblem problem = makeProblem(W, H, L, 42);
    SystemConfig cfg = makeSystemConfig(1, 4);
    cfg.pe.strictHazards = true;

    expectEquivalent(cfg, [&](VipSystem &sys) {
        MrfDramLayout layout(sys.vaultBase(0), W, H, L);
        layout.upload(problem, sys.dram());
        const unsigned per = H / 4;
        for (unsigned pe = 0; pe < 4; ++pe) {
            sys.pe(pe).loadProgram(genBpSweep(
                layout, BpVariant{},
                BpSweepJob{SweepDir::Right, pe * per, (pe + 1) * per}));
        }
        sys.run(50'000'000);
    });
}

TEST(FfEquivalence, ConvSingleShard)
{
    const unsigned C = 8, H = 10, W = 12, OC = 4, K = 3;
    Rng rng(11);
    FeatureMap in(C, H, W);
    for (auto &v : in.data)
        v = static_cast<Fx16>(rng.nextRange(-10, 10));
    const auto filters = randomWeights(
        static_cast<std::size_t>(OC) * C * K * K, rng, 3);
    const auto bias = randomWeights(OC, rng, 20);

    SystemConfig cfg = makeSystemConfig(1, 1);
    cfg.pe.strictHazards = true;

    expectEquivalent(cfg, [&](VipSystem &sys) {
        const Addr base = sys.vaultBase(0);
        FmapDramLayout in_lay(base, C, H, W, 1);
        FmapDramLayout out_lay(in_lay.end() + 64, OC, H, W, 0);
        const Addr filt_addr = out_lay.end() + 64;
        const auto blob = packFilters(filters, C, K, 0, OC, 0, C);
        sys.dram().write(filt_addr, blob.data(), blob.size() * 2);
        const Addr bias_addr = filt_addr + blob.size() * 2 + 64;
        sys.dram().write(bias_addr, bias.data(), bias.size() * 2);
        in_lay.upload(in, sys.dram());

        ConvJob job;
        job.in = &in_lay;
        job.out = &out_lay;
        job.filterBlob = filt_addr;
        job.biasBlob = bias_addr;
        job.zShard = C;
        job.filters = OC;
        job.rowBegin = 0;
        job.rowEnd = H;
        job.width = W;
        sys.pe(0).loadProgram(genConvPass(job));
        sys.run(50'000'000);
    });
}

TEST(FfEquivalence, FcPartialThenAccum)
{
    const unsigned IN = 128, OUT = 64, SEGS = 4;
    Rng rng(16);
    const auto input = randomWeights(IN, rng, 30);
    const auto weights = randomWeights(
        static_cast<std::size_t>(OUT) * IN, rng, 5);
    const auto bias = randomWeights(OUT, rng, 50);

    SystemConfig cfg = makeSystemConfig(1, 4);
    cfg.pe.strictHazards = true;

    // Two run() phases: the warp bookkeeping must survive a drained
    // machine being reloaded and run again.
    expectEquivalent(cfg, [&](VipSystem &sys) {
        const Addr base = sys.vaultBase(0);
        const Addr w_addr = base;
        const Addr in_addr = w_addr + weights.size() * 2 + 64;
        const Addr bias_addr = in_addr + input.size() * 2 + 64;
        const Addr out_addr = bias_addr + bias.size() * 2 + 64;
        const Addr part_base = out_addr + OUT * 2 + 64;
        const std::uint64_t part_stride = OUT * 2 + 64;
        sys.dram().write(w_addr, weights.data(), weights.size() * 2);
        sys.dram().write(in_addr, input.data(), input.size() * 2);
        sys.dram().write(bias_addr, bias.data(), bias.size() * 2);

        for (unsigned s = 0; s < SEGS; ++s) {
            FcPartialJob job;
            job.weightBase = w_addr;
            job.inputBase = in_addr;
            job.outBase = part_base + s * part_stride;
            job.inputs = IN;
            job.segOffset = s * (IN / SEGS);
            job.segLen = IN / SEGS;
            job.rowBegin = 0;
            job.rowEnd = OUT;
            job.outBlock = 32;
            sys.pe(s).loadProgram(genFcPartial(job));
        }
        sys.run(50'000'000);

        FcAccumJob acc;
        acc.partialBase0 = part_base;
        acc.strideOuter = part_stride;
        acc.countOuter = SEGS;
        acc.strideInner = 0;
        acc.countInner = 1;
        acc.outBase = out_addr;
        acc.biasBase = bias_addr;
        acc.outBegin = 0;
        acc.outEnd = OUT;
        acc.chunk = 32;
        sys.pe(0).loadProgram(genFcAccum(acc));
        sys.run(50'000'000);
    });
}

TEST(FfEquivalence, MemoryBoundCopySkipsMostCycles)
{
    // A fenced DRAM copy is dominated by round-trip latency; the warp
    // should skip the bulk of the simulated cycles.
    SystemConfig cfg = makeSystemConfig(1, 1);

    auto drive = [](VipSystem &sys) {
        AsmBuilder b;
        const Addr src = sys.vaultBase(0);
        const Addr dst = src + (1ull << 20);
        b.movImm(1, 0);
        b.movImm(2, 32);     // chunks
        b.movImm(3, static_cast<std::int64_t>(src));
        b.movImm(4, static_cast<std::int64_t>(dst));
        b.movImm(5, 1024);   // stride
        b.movImm(6, 512);    // elements per chunk
        b.movImm(7, 0);      // scratchpad buffer
        const auto loop = b.newLabel();
        b.bind(loop);
        b.ldSram(7, 3, 6);
        b.stSram(7, 4, 6);
        b.memfence();
        b.scalar(ScalarOp::Add, 3, 3, 5);
        b.scalar(ScalarOp::Add, 4, 4, 5);
        b.addImm(1, 1, 1);
        b.branch(BranchCond::Lt, 1, 2, loop);
        b.halt();
        sys.pe(0).loadProgram(b.finish());
        sys.run(50'000'000);
    };
    expectEquivalent(cfg, drive);

    const Observed warped = observe(cfg, true, drive);
    EXPECT_GT(warped.skipped, warped.cycles / 2)
        << "memory-bound copy should be mostly dead cycles";
}

} // namespace
} // namespace vip
