/**
 * @file
 * The fault-injection subsystem: the determinism contract (same seed,
 * same strikes — with and without event-horizon fast-forward), the
 * SECDED ECC model on the vault read path, forced deadlock under 100%
 * packet loss with a useful diagnosis, sweep isolation of failing
 * points, and the config-validation front door.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "isa/builder.hh"
#include "sim/error.hh"
#include "sim/fault.hh"
#include "sim/sweep.hh"
#include "system/simulation.hh"

namespace vip {
namespace {

/** Chunked DRAM read-modify-write loop: plenty of word reads, NoC
 *  round trips, and issued instructions for the rates to bite on. */
std::vector<Instruction>
streamProgram(Addr base, unsigned chunks)
{
    AsmBuilder b;
    b.movImm(1, 0);
    b.movImm(2, chunks);
    b.movImm(3, static_cast<std::int64_t>(base));
    b.movImm(5, 512);  // stride (bytes)
    b.movImm(6, 256);  // elements per chunk
    b.movImm(7, 0);
    const auto loop = b.newLabel();
    b.bind(loop);
    b.ldSram(7, 3, 6);
    b.stSram(7, 3, 6);
    b.scalar(ScalarOp::Add, 3, 3, 5);
    b.addImm(1, 1, 1);
    b.branch(BranchCond::Lt, 1, 2, loop);
    b.memfence();
    b.halt();
    return b.finish();
}

/** Copy @p elems int16 values src -> dst through the scratchpad. */
std::vector<Instruction>
copyProgram(Addr src, Addr dst, unsigned elems)
{
    AsmBuilder b;
    b.movImm(10, static_cast<std::int64_t>(src));
    b.movImm(11, static_cast<std::int64_t>(dst));
    b.movImm(6, elems);
    b.movImm(7, 0);
    b.ldSram(7, 10, 6);
    b.stSram(7, 11, 6);
    b.memfence();
    b.halt();
    return b.finish();
}

struct Snapshot
{
    Cycles cycles = 0;
    FaultStats stats;
    std::vector<FaultSite> sites;
    std::uint64_t fingerprint = 0;
};

bool
sameStats(const FaultStats &a, const FaultStats &b)
{
    return a.dramBitFlips == b.dramBitFlips &&
           a.retentionErrors == b.retentionErrors &&
           a.eccCorrected == b.eccCorrected &&
           a.eccDetected == b.eccDetected && a.eccSilent == b.eccSilent &&
           a.nocDropped == b.nocDropped &&
           a.nocCorrupted == b.nocCorrupted &&
           a.nocRetransmits == b.nocRetransmits &&
           a.spBitFlips == b.spBitFlips;
}

constexpr unsigned kChunks = 64;
constexpr unsigned kElems = kChunks * 256;

/** Run the stream workload under @p plan and snapshot everything the
 *  determinism contract promises to reproduce. */
Snapshot
runCampaign(const FaultPlan &plan, bool fast_forward)
{
    SystemConfig cfg = makeSystemConfig(1, 1);
    cfg.fastForward = fast_forward;
    cfg.faults = plan;
    Simulation sim(cfg);
    const Addr base = sim.vaultBase(0);
    std::vector<std::int16_t> data(kElems);
    for (unsigned i = 0; i < kElems; ++i)
        data[i] = static_cast<std::int16_t>(i * 7 + 1);
    sim.pokeDram(base, data);
    sim.loadProgram(0, streamProgram(base, kChunks));

    const RunResult r = sim.run(50'000'000);
    EXPECT_TRUE(r.haltedCleanly);
    EXPECT_TRUE(r.faultInjectionEnabled);

    Snapshot s;
    s.cycles = r.cycles;
    s.stats = r.faults;
    s.sites = sim.system().faultInjector()->sites();
    // FNV-1a over the whole touched DRAM range: any divergence in what
    // was flipped (or corrected) shows up here.
    std::uint64_t h = 14695981039346656037ull;
    for (const std::int16_t v : sim.peekDram(base, kElems)) {
        h ^= static_cast<std::uint16_t>(v);
        h *= 1099511628211ull;
    }
    s.fingerprint = h;
    return s;
}

FaultPlan
noisyPlan(std::uint64_t seed)
{
    FaultPlan plan;
    plan.enabled = true;
    plan.seed = seed;
    plan.dramReadBitFlipRate = 0.01;
    plan.retentionErrorRate = 0.5;
    plan.nocDropRate = 0.02;
    plan.nocCorruptRate = 0.02;
    plan.spBitFlipRate = 1e-4;
    return plan;
}

TEST(FaultInjection, SameSeedSameStrikes)
{
    const Snapshot a = runCampaign(noisyPlan(42), true);
    const Snapshot b = runCampaign(noisyPlan(42), true);

    // The campaign must actually have injected something — otherwise
    // this test pins nothing.
    EXPECT_GT(a.stats.dramBitFlips, 0u);
    EXPECT_GT(a.stats.retentionErrors, 0u);
    EXPECT_GT(a.stats.nocRetransmits, 0u);

    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_TRUE(sameStats(a.stats, b.stats));
    EXPECT_EQ(a.sites.size(), b.sites.size());
    EXPECT_TRUE(a.sites == b.sites);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
}

TEST(FaultInjection, DifferentSeedDifferentStrikes)
{
    const Snapshot a = runCampaign(noisyPlan(42), true);
    const Snapshot b = runCampaign(noisyPlan(43), true);
    EXPECT_FALSE(a.sites == b.sites);
}

TEST(FaultInjection, FastForwardInjectsIdentically)
{
    // Injection decisions are keyed by event identity, never by the
    // cycle number, so warping over dead cycles must not change one
    // strike: same sites, same counters, same cycle count, same bytes.
    const Snapshot ff = runCampaign(noisyPlan(7), true);
    const Snapshot slow = runCampaign(noisyPlan(7), false);
    EXPECT_GT(ff.stats.dramBitFlips, 0u);
    EXPECT_EQ(ff.cycles, slow.cycles);
    EXPECT_TRUE(sameStats(ff.stats, slow.stats));
    EXPECT_TRUE(ff.sites == slow.sites);
    EXPECT_EQ(ff.fingerprint, slow.fingerprint);
}

TEST(FaultInjection, DisabledPlanAllocatesNoInjector)
{
    Simulation sim(makeSystemConfig(1, 1));
    EXPECT_EQ(sim.system().faultInjector(), nullptr);
    const RunResult r = sim.loadProgram(0, "halt\n").run(1000);
    EXPECT_FALSE(r.faultInjectionEnabled);
}

// --- ECC ---

struct EccFixture
{
    /** A copy workload over exactly one aligned 8-byte DRAM word. */
    explicit EccFixture(bool ecc)
    {
        FaultPlan plan;
        plan.enabled = true;
        plan.eccEnabled = ecc;
        SystemConfig cfg = makeSystemConfig(1, 1);
        cfg.faults = plan;
        sim = std::make_unique<Simulation>(cfg);
        src = sim->vaultBase(0);
        dst = src + 4096;
        sim->pokeDram(src, {100, 200, 300, 400});
    }

    RunResult
    copyAndRun()
    {
        sim->loadProgram(0, copyProgram(src, dst, 4));
        return sim->run(1'000'000);
    }

    std::unique_ptr<Simulation> sim;
    Addr src = 0, dst = 0;
};

TEST(FaultInjectionEcc, SingleBitFlipIsCorrected)
{
    EccFixture f(true);
    f.sim->system().faultInjector()->plantBitFlip(f.src, 0);
    const RunResult r = f.copyAndRun();
    EXPECT_TRUE(r.haltedCleanly);
    // The PE's read scrubbed the word: copied data is clean, the
    // backing store was corrected in place, and the record retired.
    EXPECT_EQ(f.sim->peekDram(f.dst, 4),
              (std::vector<std::int16_t>{100, 200, 300, 400}));
    EXPECT_EQ(f.sim->peekDram(f.src), 100);
    EXPECT_EQ(r.faults.eccCorrected, 1u);
    EXPECT_EQ(r.faults.eccDetected, 0u);
    EXPECT_EQ(f.sim->system().faultInjector()->outstandingFlippedWords(),
              0u);
}

TEST(FaultInjectionEcc, DoubleBitFlipIsDetectedNotCorrected)
{
    EccFixture f(true);
    FaultInjector *inj = f.sim->system().faultInjector();
    inj->plantBitFlip(f.src, 0);      // bit 0 of element 0's low byte
    inj->plantBitFlip(f.src + 1, 0);  // bit 0 of element 0's high byte
    const RunResult r = f.copyAndRun();
    EXPECT_TRUE(r.haltedCleanly);
    // SECDED sees two flipped bits in the word: detected, not fixed.
    EXPECT_EQ(f.sim->peekDram(f.dst),
              static_cast<std::int16_t>(100 ^ 0x0101));
    EXPECT_EQ(r.faults.eccCorrected, 0u);
    EXPECT_EQ(r.faults.eccDetected, 1u);
}

TEST(FaultInjectionEcc, EccOffLetsFlipsPropagate)
{
    EccFixture f(false);
    f.sim->system().faultInjector()->plantBitFlip(f.src, 0);
    const RunResult r = f.copyAndRun();
    EXPECT_TRUE(r.haltedCleanly);
    EXPECT_EQ(f.sim->peekDram(f.dst),
              static_cast<std::int16_t>(100 ^ 1));
    EXPECT_EQ(r.faults.eccCorrected, 0u);
    EXPECT_EQ(r.faults.eccDetected, 0u);
}

TEST(FaultInjectionEcc, HostWriteHealsTheRecord)
{
    EccFixture f(true);
    FaultInjector *inj = f.sim->system().faultInjector();
    inj->plantBitFlip(f.src, 0);
    EXPECT_EQ(inj->outstandingFlippedWords(), 1u);
    // A host poke overwrites the corrupt bytes; the ECC record must
    // follow, or the next read would "correct" fresh data.
    f.sim->pokeDram(f.src, {100, 200, 300, 400});
    EXPECT_EQ(inj->outstandingFlippedWords(), 0u);
    const RunResult r = f.copyAndRun();
    EXPECT_EQ(f.sim->peekDram(f.dst), 100);
    EXPECT_EQ(r.faults.eccCorrected, 0u);
}

// --- graceful failure handling ---

TEST(FaultInjectionDeadlock, TotalPacketLossYieldsDiagnosis)
{
    FaultPlan plan;
    plan.enabled = true;
    plan.nocDropRate = 1.0;  // no memory response ever arrives
    SystemConfig cfg = makeSystemConfig(1, 1);
    cfg.faults = plan;
    cfg.watchdogCycles = 5'000;
    Simulation sim(cfg);
    const Addr base = sim.vaultBase(0);
    sim.loadProgram(0, copyProgram(base, base + 4096, 4));
    try {
        sim.run(10'000'000);
        FAIL() << "expected DeadlockError";
    } catch (const DeadlockError &e) {
        const std::string &d = e.detail();
        EXPECT_NE(d.find("pe0"), std::string::npos) << d;
        EXPECT_NE(d.find("lsq="), std::string::npos) << d;
        EXPECT_NE(d.find("noc"), std::string::npos) << d;
    }
    EXPECT_GT(sim.system().faultInjector()->stats().nocDropped, 0u);
}

TEST(FaultInjectionDeadlock, SweepIsolatesTheWedgedPoint)
{
    // Three points; the middle one wedges under total packet loss. The
    // campaign must report one structured failure and two results.
    auto point = [](bool wedged) -> Cycles {
        FaultPlan plan;
        plan.enabled = true;
        plan.nocDropRate = wedged ? 1.0 : 0.0;
        SystemConfig cfg = makeSystemConfig(1, 1);
        cfg.faults = plan;
        cfg.watchdogCycles = 5'000;
        Simulation sim(cfg);
        const Addr base = sim.vaultBase(0);
        sim.loadProgram(0, copyProgram(base, base + 4096, 4));
        return sim.run(10'000'000).cycles;
    };

    SweepEngine engine(2);
    const auto outcomes = engine.runResilient<Cycles>({
        [&] { return point(false); },
        [&] { return point(true); },
        [&] { return point(false); },
    });
    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_TRUE(outcomes[0].ok);
    EXPECT_FALSE(outcomes[1].ok);
    EXPECT_TRUE(outcomes[2].ok);
    EXPECT_EQ(outcomes[1].failure.kind, "deadlock");
    EXPECT_NE(outcomes[1].failure.message.find("deadlocked"),
              std::string::npos);
    EXPECT_NE(outcomes[1].failure.detail.find("pe0"), std::string::npos);
    EXPECT_GT(outcomes[0].result, 0u);
    EXPECT_EQ(outcomes[0].result, outcomes[2].result);
}

// --- plan parsing & config validation ---

TEST(FaultPlanSpec, ParsesAndRoundTrips)
{
    const FaultPlan p = FaultPlan::parse(
        "seed=42,dram-read=1e-3,retention=0.5,noc-drop=0.25,"
        "noc-corrupt=0.125,sp-flip=1e-6,ecc=off");
    EXPECT_TRUE(p.enabled);
    EXPECT_EQ(p.seed, 42u);
    EXPECT_DOUBLE_EQ(p.dramReadBitFlipRate, 1e-3);
    EXPECT_DOUBLE_EQ(p.retentionErrorRate, 0.5);
    EXPECT_DOUBLE_EQ(p.nocDropRate, 0.25);
    EXPECT_DOUBLE_EQ(p.nocCorruptRate, 0.125);
    EXPECT_DOUBLE_EQ(p.spBitFlipRate, 1e-6);
    EXPECT_FALSE(p.eccEnabled);
    const FaultPlan q = FaultPlan::parse(p.toString());
    EXPECT_EQ(q.toString(), p.toString());
}

TEST(FaultPlanSpec, RejectsBadSpecs)
{
    EXPECT_THROW(FaultPlan::parse("bogus=1"), ConfigError);
    EXPECT_THROW(FaultPlan::parse("dram-read=2.0"), ConfigError);
    EXPECT_THROW(FaultPlan::parse("dram-read=-0.5"), ConfigError);
    EXPECT_THROW(FaultPlan::parse("dram-read=notanumber"), ConfigError);
    EXPECT_THROW(FaultPlan::parse("seed"), ConfigError);
    EXPECT_THROW(FaultPlan::parse("ecc=maybe"), ConfigError);
}

TEST(ConfigValidation, RejectsBadConfigs)
{
    {
        SystemConfig cfg = makeSystemConfig(1, 1);
        cfg.mem.geom.vaults = 3;  // not a power of two
        EXPECT_THROW(VipSystem{cfg}, ConfigError);
    }
    {
        SystemConfig cfg = makeSystemConfig(1, 1);
        cfg.mem.timing.tCL = 0;
        EXPECT_THROW(VipSystem{cfg}, ConfigError);
    }
    {
        SystemConfig cfg = makeSystemConfig(4, 1);
        cfg.nocX = 3;  // 3x2 grid for 4 vaults
        EXPECT_THROW(VipSystem{cfg}, ConfigError);
    }
    {
        SystemConfig cfg = makeSystemConfig(1, 1);
        cfg.mem.transQueueDepth = 0;
        EXPECT_THROW(VipSystem{cfg}, ConfigError);
    }
    {
        SystemConfig cfg = makeSystemConfig(1, 1);
        cfg.faults.enabled = true;
        cfg.faults.nocDropRate = 1.5;
        EXPECT_THROW(VipSystem{cfg}, ConfigError);
    }
    {
        SystemConfig cfg = makeSystemConfig(1, 1);
        cfg.watchdogCycles = 0;
        EXPECT_THROW(VipSystem{cfg}, ConfigError);
    }
}

TEST(ConfigValidation, MessagesNameTheParameter)
{
    SystemConfig cfg = makeSystemConfig(1, 1);
    cfg.mem.geom.vaults = 3;
    try {
        VipSystem sys(cfg);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_EQ(e.kind(), "config");
        EXPECT_NE(e.message().find("vault"), std::string::npos)
            << e.message();
    }
}

} // namespace
} // namespace vip
