#!/usr/bin/env python3
"""Fixture tests for tools/vip-lint.

Each rule has a violating, a clean, and a suppressed fixture under
tests/lint/fixtures/. For every fixture this driver runs vip-lint on
that single file and asserts the exit code, the exact set of rule
names reported, and (for violating fixtures) the violation count —
so a rule that silently stops firing fails the same as one that
over-fires.

Runs under ctest as `lint_test`; takes no arguments and needs only a
Python interpreter.
"""

import os
import re
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(os.path.dirname(HERE))
VIP_LINT = os.path.join(ROOT, "tools", "vip-lint")
FIXTURES = os.path.join(HERE, "fixtures")

REPORT_RE = re.compile(r"^(?P<path>.+):(?P<line>\d+): \[(?P<rule>[\w-]+)\]")

# fixture file -> (expected exit code, expected rule multiset as
# {rule: count}); {} means "no violations".
CASES = {
    "no_rand_violate.cc": (1, {"no-rand": 3}),
    "no_rand_clean.cc": (0, {}),
    "no_rand_suppressed.cc": (0, {}),
    "wall_clock_violate.cc": (1, {"wall-clock": 4}),
    "wall_clock_clean.cc": (0, {}),
    "wall_clock_suppressed.cc": (0, {}),
    "wall_clock_violate.py": (1, {"wall-clock": 2}),
    "wall_clock_clean.py": (0, {}),
    "wall_clock_suppressed.py": (0, {}),
    "pointer_order_violate.cc": (1, {"pointer-order": 4}),
    "pointer_order_clean.cc": (0, {}),
    "pointer_order_suppressed.cc": (0, {}),
    "unordered_iter_violate.cc": (1, {"unordered-iter": 2}),
    "unordered_iter_clean.cc": (0, {}),
    "unordered_iter_suppressed.cc": (0, {}),
    "raw_sync_violate.cc": (1, {"raw-sync": 4}),
    "raw_sync_clean.cc": (0, {}),
    "raw_sync_suppressed.cc": (0, {}),
    "unbounded_wait_violate.cc": (1, {"unbounded-wait": 2}),
    "unbounded_wait_clean.cc": (0, {}),
    "unbounded_wait_suppressed.cc": (0, {}),
    "stat_name_violate.cc": (1, {"stat-name": 3}),
    "stat_name_clean.cc": (0, {}),
    "stat_name_suppressed.cc": (0, {}),
    "include_guard_violate.hh": (1, {"include-guard": 1}),
    "include_guard_clean.hh": (0, {}),
    "include_guard_suppressed.hh": (0, {}),
    "using_namespace_violate.hh": (1, {"using-namespace": 1}),
    "using_namespace_clean.hh": (0, {}),
    "using_namespace_suppressed.hh": (0, {}),
    "unused_allow_violate.cc": (1, {"unused-allow": 1}),
    "unused_allow_clean.cc": (0, {}),
    "unused_allow_suppressed.cc": (0, {}),
}


def run_lint(*argv):
    return subprocess.run(
        [sys.executable, VIP_LINT, "--root", ROOT, *argv],
        capture_output=True, text=True)


def reported_rules(stdout):
    rules = {}
    for line in stdout.splitlines():
        m = REPORT_RE.match(line)
        if m:
            rules[m.group("rule")] = rules.get(m.group("rule"), 0) + 1
    return rules


def main():
    failures = []

    on_disk = sorted(os.listdir(FIXTURES))
    expected_files = sorted(CASES)
    if on_disk != expected_files:
        failures.append(
            f"fixture directory and CASES disagree:\n"
            f"  on disk only: {sorted(set(on_disk) - set(CASES))}\n"
            f"  in CASES only: {sorted(set(CASES) - set(on_disk))}")

    for fixture, (want_exit, want_rules) in sorted(CASES.items()):
        proc = run_lint(os.path.join(FIXTURES, fixture))
        got_rules = reported_rules(proc.stdout)
        problems = []
        if proc.returncode != want_exit:
            problems.append(
                f"exit {proc.returncode}, expected {want_exit}")
        if got_rules != want_rules:
            problems.append(
                f"rules {got_rules or '{}'}, expected "
                f"{want_rules or '{}'}")
        if problems:
            failures.append(
                f"{fixture}: " + "; ".join(problems) +
                (f"\n  stdout: {proc.stdout.strip()}"
                 if proc.stdout.strip() else "") +
                (f"\n  stderr: {proc.stderr.strip()}"
                 if proc.stderr.strip() else ""))
        else:
            print(f"ok {fixture}")

    # CLI contract: --list-rules succeeds, a missing path is a usage
    # error (exit 2), and fixture paths never leak into a clean run.
    proc = run_lint("--list-rules")
    if proc.returncode != 0 or "unordered-iter" not in proc.stdout:
        failures.append("--list-rules: expected exit 0 with the rule "
                        f"catalog, got exit {proc.returncode}")
    else:
        print("ok --list-rules")

    proc = run_lint(os.path.join(FIXTURES, "does_not_exist.cc"))
    if proc.returncode != 2:
        failures.append(
            f"missing path: exit {proc.returncode}, expected 2")
    else:
        print("ok missing-path exit code")

    if failures:
        print(f"\n{len(failures)} failure(s):", file=sys.stderr)
        for f in failures:
            print(f"FAIL {f}", file=sys.stderr)
        return 1
    print(f"\nall {len(CASES) + 2} lint checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
