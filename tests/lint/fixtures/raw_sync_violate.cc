// Fixture: raw std synchronization the thread-safety analysis cannot
// see through.
#include <condition_variable>
#include <mutex>

std::mutex gate;
std::condition_variable ready;

void
waitReady(bool &flag)
{
    std::unique_lock<std::mutex> lock(gate);
    ready.wait(lock, [&flag] { return flag; });
}

void
setReady(bool &flag)
{
    std::lock_guard<std::mutex> lock(gate);
    flag = true;
}
