// Fixture: the sanctioned annotated wrappers from sim/mutex.hh.
#include "sim/mutex.hh"

vip::Mutex gate;
vip::CondVar ready;

void
waitReady(bool &flag)
{
    vip::LockGuard lock(gate);
    ready.wait(lock, [&flag] { return flag; });
}

void
setReady(bool &flag)
{
    vip::LockGuard lock(gate);
    flag = true;
}
