// Fixture: a sanctioned raw primitive (e.g. interop with a foreign
// API that hands out std::unique_lock) under an explicit allow.
#include <mutex>

// Adopting a lock a third-party callback API already holds.
void
adopt(std::mutex &theirs)  // vip-lint: allow(raw-sync)
{
    std::lock_guard<std::mutex> lock(theirs,  // vip-lint: allow(raw-sync)
                                     std::adopt_lock);
}
