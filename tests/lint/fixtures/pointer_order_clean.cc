// Fixture: ordering by stable ids, not pointer values.
#include <cstdint>
#include <map>
#include <set>

std::map<std::uint32_t, int> rankById;
std::set<std::uint32_t> visitedIds;
