"""Fixture: monotonic interval timing is fine; wall-clock stays quiet."""
import time


def measure(fn):
    start = time.monotonic()
    fn()
    return time.monotonic() - start
