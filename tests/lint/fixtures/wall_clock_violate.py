"""Fixture: python host-clock reads; wall-clock should fire."""
import time
from datetime import datetime


def stamp():
    return time.time(), datetime.now()
