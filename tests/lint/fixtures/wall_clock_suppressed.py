"""Fixture: suppressed python wall-clock read."""
import time


def stamp():
    return time.time()  # vip-lint: allow(wall-clock)
