// Fixture: calls into host randomness; every line here should trip
// the no-rand rule.
#include <cstdlib>
#include <random>

int
noise()
{
    std::random_device rd;
    srand(42);
    return rand() + static_cast<int>(rd());
}
