// Fixture: host clock reads feeding a return value.
#include <chrono>
#include <ctime>

double
now()
{
    const auto a = std::chrono::steady_clock::now();
    const auto b = std::chrono::system_clock::now();
    const auto c = std::chrono::high_resolution_clock::now();
    (void)b;
    (void)c;
    const std::time_t t = time(nullptr);
    return std::chrono::duration<double>(a.time_since_epoch()).count() +
           static_cast<double>(t);
}
