// Fixture: a pointer-keyed side table that never reaches output,
// suppressed explicitly.
#include <map>

struct Node;

// Debug-only aid; never serialized. // vip-lint: allow(pointer-order)
std::map<Node *, int> debugRank;
