// Fixture: predicate-less condition-variable waits — one missed
// notify and each of these threads is wedged forever.
#include "sim/mutex.hh"

vip::Mutex gate;
vip::CondVar ready;

void
waitForeverOnNotify(bool &flag)
{
    vip::LockGuard lock(gate);
    while (!flag)
        ready.wait(lock);
}

void
waitWithoutEvenALoop()
{
    vip::LockGuard lock(gate);
    ready.wait(lock);
}
