// Fixture: stat registration names that would corrupt dotted paths
// or break dump parsing.
struct StatGroup
{
    explicit StatGroup(const char *) {}
};
struct Counter
{
    Counter(StatGroup *, const char *, const char *) {}
};

StatGroup badGroup("Bad Group");

Counter dotted(&badGroup, "cache.hits", "dots split stat paths");
Counter spaced(&badGroup, "cache hits", "spaces break dump parsing");
Counter capitalized(&badGroup, "CacheHits", "must start lowercase");
