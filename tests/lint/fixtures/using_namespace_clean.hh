// Fixture: qualified names only.
#ifndef VIP_TESTS_LINT_FIXTURES_USING_NAMESPACE_CLEAN_HH
#define VIP_TESTS_LINT_FIXTURES_USING_NAMESPACE_CLEAN_HH

#include <string>

std::string fixtureName();

#endif // VIP_TESTS_LINT_FIXTURES_USING_NAMESPACE_CLEAN_HH
