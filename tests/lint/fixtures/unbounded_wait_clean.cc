// Fixture: predicate waits — re-check the condition on every wakeup,
// so a lost or spurious notify cannot wedge the thread.
#include "sim/mutex.hh"

vip::Mutex gate;
vip::CondVar ready;

void
waitReady(bool &flag)
{
    vip::LockGuard lock(gate);
    ready.wait(lock, [&flag] { return flag; });
}

void
waitDone(int &count)
{
    vip::LockGuard lock(gate);
    ready.wait(lock, [&count] { return count == 0; });
}
