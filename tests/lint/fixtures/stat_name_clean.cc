// Fixture: identifier-like stat names (both repo spellings).
struct StatGroup
{
    explicit StatGroup(const char *) {}
};
struct Counter
{
    Counter(StatGroup *, const char *, const char *) {}
};

StatGroup group("serve");

Counter snake(&group, "vector_ops", "snake_case is fine");
Counter camel(&group, "cacheHits", "lowerCamel is fine");
