// Fixture: a legacy stat name kept for golden compatibility,
// suppressed explicitly.
struct StatGroup
{
    explicit StatGroup(const char *) {}
};
struct Counter
{
    Counter(StatGroup *, const char *, const char *) {}
};

StatGroup group("legacy");

Counter legacy(&group, "Hit.Rate", "frozen"); // vip-lint: allow(stat-name)
