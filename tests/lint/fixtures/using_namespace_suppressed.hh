// Fixture: a using-directive kept in a generated-style header,
// suppressed explicitly.
#ifndef VIP_TESTS_LINT_FIXTURES_USING_NAMESPACE_SUPPRESSED_HH
#define VIP_TESTS_LINT_FIXTURES_USING_NAMESPACE_SUPPRESSED_HH

#include <string>

using namespace std;  // vip-lint: allow(using-namespace)

string fixtureName();

#endif // VIP_TESTS_LINT_FIXTURES_USING_NAMESPACE_SUPPRESSED_HH
