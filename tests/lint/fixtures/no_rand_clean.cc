// Fixture: deterministic mixing only; no-rand must stay quiet.
#include <cstdint>

std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    return x ^ (x >> 33);
}
