// Fixture: a sanctioned host-entropy read, explicitly suppressed.
#include <random>

unsigned
entropy()
{
    std::random_device rd;  // vip-lint: allow(no-rand)
    return rd();
}
