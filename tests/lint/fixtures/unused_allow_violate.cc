// Fixture: an allow() comment with nothing to suppress — stale
// exceptions must themselves be violations.
int
plain()
{
    return 7;  // vip-lint: allow(wall-clock)
}
