// Fixture: simulated time only; wall-clock must stay quiet.
#include <cstdint>

using Cycles = std::uint64_t;

double
cyclesToMs(Cycles c)
{
    return static_cast<double>(c) / 1e6;
}
