// Fixture: no suppressions at all.
int
plain()
{
    return 7;
}
