// Fixture: a host-timing measurement site, suppressed the sanctioned
// way (comment-above form).
#include <chrono>

double
hostSeconds()
{
    // Host-timing site. // vip-lint: allow(wall-clock)
    const auto start = std::chrono::steady_clock::now();
    const auto end = std::chrono::steady_clock::now();  // vip-lint: allow(wall-clock)
    return std::chrono::duration<double>(end - start).count();
}
