// Fixture: pointer-keyed ordering and pointer hashing — every
// construct here is allocation-order-dependent.
#include <cstdint>
#include <functional>
#include <map>
#include <set>

struct Node;

std::map<Node *, int> rankByPointer;
std::set<Node *> visited;

std::size_t
hashPointer(Node *n)
{
    const auto bits = reinterpret_cast<std::uintptr_t>(n);
    return std::hash<Node *>{}(n) ^ bits;
}
