// Fixture: keyed lookups into an unordered map are fine — only
// iteration is hash-ordered.
#include <cstdint>
#include <unordered_map>

std::unordered_map<std::uint64_t, std::uint64_t> pages;

std::uint64_t
bytesAt(std::uint64_t page)
{
    const auto it = pages.find(page);
    return it == pages.end() ? 0 : it->second;
}
