// Fixture: file-scope using-directive in a header.
#ifndef VIP_TESTS_LINT_FIXTURES_USING_NAMESPACE_VIOLATE_HH
#define VIP_TESTS_LINT_FIXTURES_USING_NAMESPACE_VIOLATE_HH

#include <string>

using namespace std;

string fixtureName();

#endif // VIP_TESTS_LINT_FIXTURES_USING_NAMESPACE_VIOLATE_HH
