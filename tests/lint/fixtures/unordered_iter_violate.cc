// Fixture: hash-order iteration reaching a caller-visible sum.
#include <cstdint>
#include <unordered_map>

std::unordered_map<std::uint64_t, std::uint64_t> pages;

std::uint64_t
total()
{
    std::uint64_t sum = 0;
    for (const auto &[page, bytes] : pages)
        sum += bytes;
    for (auto it = pages.begin(); it != pages.end(); ++it)
        sum ^= it->first;
    return sum;
}
