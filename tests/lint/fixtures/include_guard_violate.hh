// Fixture: a guard that does not match the canonical VIP_<PATH>_HH
// name for this file.
#ifndef SOME_OTHER_GUARD_HH
#define SOME_OTHER_GUARD_HH

int fixtureValue();

#endif // SOME_OTHER_GUARD_HH
