// Fixture: the sanctioned sorted-drain idiom — the collector loop is
// suppressed, everything downstream walks the sorted copy.
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

std::unordered_map<std::uint64_t, std::uint64_t> pages;

std::vector<std::uint64_t>
sortedPages()
{
    std::vector<std::uint64_t> keys;
    keys.reserve(pages.size());
    // Hash-order scan feeding a sorted copy. // vip-lint: allow(unordered-iter)
    for (const auto &[page, bytes] : pages)
        keys.push_back(page);
    std::sort(keys.begin(), keys.end());
    return keys;
}
