// Fixture: a deliberately-kept stale allow, itself suppressed via
// the meta rule.
int
plain()
{
    return 7;  // vip-lint: allow(wall-clock, unused-allow)
}
