// Fixture: a sanctioned predicate-less wait under an explicit allow
// (e.g. a wrapper layer forwarding the caller's own predicate).
#include "sim/mutex.hh"

vip::Mutex gate;
vip::CondVar ready;

void
forwardedWait(bool &checked_by_caller)
{
    vip::LockGuard lock(gate);
    while (!checked_by_caller)
        ready.wait(lock);  // vip-lint: allow(unbounded-wait)
}
