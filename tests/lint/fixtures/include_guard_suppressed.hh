// Fixture: a nonstandard guard kept on purpose, suppressed on the
// #ifndef line.
#ifndef LEGACY_GUARD_HH  // vip-lint: allow(include-guard)
#define LEGACY_GUARD_HH

int fixtureValue();

#endif // LEGACY_GUARD_HH
