/**
 * @file
 * Advanced integration tests: the ARC-covers-vector interlock mode,
 * multi-vault execution over the torus, seeded (hierarchical) BP,
 * shallow software-pipeline variants, large filter groups, and direct
 * unit tests of the scratchpad and ARC structures.
 */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "kernels/bp_kernel.hh"
#include "kernels/conv_kernel.hh"
#include "kernels/layout.hh"
#include "kernels/runner.hh"
#include "pe/arc.hh"
#include "pe/scratchpad.hh"
#include "sim/rng.hh"
#include "workloads/nn.hh"

namespace vip {
namespace {

MrfProblem
makeProblem(unsigned w, unsigned h, unsigned labels, std::uint64_t seed)
{
    Rng rng(seed);
    MrfProblem p;
    p.width = w;
    p.height = h;
    p.labels = labels;
    p.smoothCost = truncatedLinearSmoothness(labels, 3, 12);
    p.dataCost.resize(static_cast<std::size_t>(w) * h * labels);
    for (auto &c : p.dataCost)
        c = static_cast<Fx16>(rng.nextBelow(25));
    return p;
}

TEST(ArcCoversVector, MakesUnscheduledCodeHazardFree)
{
    // The short-mul-into-add sequence that IS a hazard on the baseline
    // machine (see pe_test) becomes a stall instead when the ARC also
    // interlocks the vector pipe — correct results, zero hazards.
    for (bool covered : {false, true}) {
        SystemConfig cfg = makeSystemConfig(1, 1);
        cfg.pe.arcCoversVector = covered;
        VipSystem sys(cfg);
        for (unsigned i = 0; i < 4; ++i)
            sys.pe(0).scratchpad().store<Fx16>(i * 2,
                                               static_cast<Fx16>(i + 2));
        AsmBuilder b;
        b.movImm(1, 4);
        b.setVl(1);
        b.movImm(2, 0);
        b.movImm(3, 64);
        b.movImm(4, 128);
        b.vv(VecOp::Mul, 3, 2, 2);
        b.vv(VecOp::Add, 4, 3, 3);
        b.halt();
        sys.pe(0).loadProgram(b.finish());
        sys.run(1'000'000);
        ASSERT_TRUE(sys.allIdle());
        for (unsigned i = 0; i < 4; ++i) {
            const int v = (i + 2) * (i + 2);
            EXPECT_EQ(sys.pe(0).scratchpad().load<Fx16>(128 + 2 * i),
                      2 * v);
        }
        if (covered) {
            EXPECT_EQ(sys.pe(0).stats().timingHazards.value(), 0u);
            EXPECT_GT(sys.pe(0).stats().stallArc.value(), 0u);
        } else {
            EXPECT_GT(sys.pe(0).stats().timingHazards.value(), 0u);
        }
    }
}

TEST(ArcCoversVector, BpKernelStaysBitExact)
{
    const unsigned W = 10, H = 8, L = 8;
    MrfProblem problem = makeProblem(W, H, L, 31);
    BpState ref(problem);
    ref.sweepDown();

    SystemConfig cfg = makeSystemConfig(1, 1);
    cfg.pe.arcCoversVector = true;
    cfg.pe.strictHazards = true;
    VipSystem sys(cfg);
    MrfDramLayout layout(sys.vaultBase(0), W, H, L);
    layout.upload(problem, sys.dram());
    sys.pe(0).loadProgram(genBpSweep(
        layout, BpVariant{},
        BpSweepJob{SweepDir::Down, 0, W}));
    sys.run(20'000'000);
    ASSERT_TRUE(sys.allIdle());

    BpState got(problem);
    layout.downloadMessages(got, sys.dram());
    for (unsigned y = 0; y < H; ++y) {
        for (unsigned x = 0; x < W; ++x) {
            for (unsigned l = 0; l < L; ++l) {
                ASSERT_EQ(ref.msgAt(FromUp, x, y)[l],
                          got.msgAt(FromUp, x, y)[l]);
            }
        }
    }
    EXPECT_EQ(sys.pe(0).stats().timingHazards.value(), 0u);
}

TEST(MultiVault, BpIterationAcrossTwoVaults)
{
    // Eight PEs in two vaults cooperate on one tile that lives in
    // vault 0: vault 1's PEs fetch everything over the torus. The
    // result must still be bit-exact — this exercises remote requests,
    // responses, and the barrier across vaults.
    const unsigned W = 16, H = 12, L = 8, iterations = 2;
    MrfProblem problem = makeProblem(W, H, L, 32);
    BpState ref(problem);
    for (unsigned i = 0; i < iterations; ++i)
        ref.iterate();

    SystemConfig cfg = makeSystemConfig(2, 4);
    cfg.pe.strictHazards = true;
    VipSystem sys(cfg);
    MrfDramLayout layout(sys.vaultBase(0), W, H, L);
    layout.upload(problem, sys.dram());
    const Addr flags = layout.end() + 64;

    const unsigned num_pes = 8;
    for (unsigned pe = 0; pe < num_pes; ++pe) {
        auto slice = [&](unsigned lanes) {
            const unsigned per = (lanes + num_pes - 1) / num_pes;
            const unsigned b = std::min(lanes, pe * per);
            return std::make_pair(b, std::min(lanes, b + per));
        };
        const auto [hb, he] = slice(H);
        const auto [vb, ve] = slice(W);
        BpSweepJob jobs[4] = {{SweepDir::Right, hb, he},
                              {SweepDir::Left, hb, he},
                              {SweepDir::Down, vb, ve},
                              {SweepDir::Up, vb, ve}};
        sys.pe(pe).loadProgram(genBpIterations(layout, BpVariant{}, jobs,
                                               iterations, flags, pe,
                                               num_pes));
    }
    sys.run(100'000'000);
    ASSERT_TRUE(sys.allIdle());

    BpState got(problem);
    layout.downloadMessages(got, sys.dram());
    EXPECT_EQ(ref.decode(), got.decode());
    for (unsigned d = 0; d < NumMsgDirs; ++d) {
        for (unsigned y = 0; y < H; ++y) {
            for (unsigned x = 0; x < W; ++x) {
                for (unsigned l = 0; l < L; ++l) {
                    ASSERT_EQ(ref.msgAt(static_cast<MsgDir>(d), x, y)[l],
                              got.msgAt(static_cast<MsgDir>(d), x, y)[l])
                        << d << " " << x << " " << y << " " << l;
                }
            }
        }
    }
    // The remote vault's PEs really did work through the torus.
    EXPECT_GT(sys.noc().delivered(), 100u);
}

TEST(HierarchicalBp, SimulatedCoarseToFineMatchesReference)
{
    // The full hierarchical flow of Sec. VI-A with both BP phases on
    // the simulator: coarse BP-M, host-side construct/copy (pure data
    // movement), fine BP-M seeded with the coarse messages.
    const unsigned W = 12, H = 8, L = 4;
    MrfProblem fine_p = makeProblem(W, H, L, 33);
    const MrfProblem coarse_p = coarsen(fine_p);

    // Reference flow.
    BpState ref_coarse(coarse_p);
    ref_coarse.iterate();
    BpState ref_fine(fine_p);
    copyMessages(ref_coarse, ref_fine);
    ref_fine.iterate();

    // Simulated flow (coarse).
    SystemConfig cfg = makeSystemConfig(1, 4);
    cfg.pe.strictHazards = true;
    VipSystem sys(cfg);
    MrfDramLayout c_layout(sys.vaultBase(0), coarse_p.width,
                           coarse_p.height, L);
    MrfDramLayout f_layout(c_layout.end() + 64, W, H, L);
    const Addr flags = f_layout.end() + 64;
    c_layout.upload(coarse_p, sys.dram());
    f_layout.upload(fine_p, sys.dram());

    auto run_phase = [&](const MrfDramLayout &layout, unsigned width,
                         unsigned height, Addr flag_base) {
        for (unsigned pe = 0; pe < 4; ++pe) {
            auto slice = [&](unsigned lanes) {
                const unsigned per = (lanes + 3) / 4;
                const unsigned b = std::min(lanes, pe * per);
                return std::make_pair(b, std::min(lanes, b + per));
            };
            const auto [hb, he] = slice(height);
            const auto [vb, ve] = slice(width);
            BpSweepJob jobs[4] = {{SweepDir::Right, hb, he},
                                  {SweepDir::Left, hb, he},
                                  {SweepDir::Down, vb, ve},
                                  {SweepDir::Up, vb, ve}};
            sys.pe(pe).loadProgram(genBpIterations(
                layout, BpVariant{}, jobs, 1, flag_base, pe, 4));
        }
        sys.run(100'000'000);
        ASSERT_TRUE(sys.allIdle());
    };

    run_phase(c_layout, coarse_p.width, coarse_p.height, flags);

    // Copy phase (host-side data movement, like construct).
    BpState sim_coarse(coarse_p);
    c_layout.downloadMessages(sim_coarse, sys.dram());
    BpState seeded(fine_p);
    copyMessages(sim_coarse, seeded);
    f_layout.uploadMessages(seeded, sys.dram());

    run_phase(f_layout, W, H, flags + 4096);

    BpState got(fine_p);
    f_layout.downloadMessages(got, sys.dram());
    for (unsigned d = 0; d < NumMsgDirs; ++d) {
        for (unsigned y = 0; y < H; ++y) {
            for (unsigned x = 0; x < W; ++x) {
                for (unsigned l = 0; l < L; ++l) {
                    ASSERT_EQ(ref_fine.msgAt(static_cast<MsgDir>(d), x,
                                             y)[l],
                              got.msgAt(static_cast<MsgDir>(d), x, y)[l]);
                }
            }
        }
    }
}

TEST(BpVariants, ShallowPrefetchDepthsStayBitExact)
{
    const unsigned W = 10, H = 8, L = 8;
    MrfProblem problem = makeProblem(W, H, L, 34);
    BpState ref(problem);
    ref.sweepRight();

    for (unsigned depth : {1u, 2u, 3u}) {
        SystemConfig cfg = makeSystemConfig(1, 1);
        cfg.pe.strictHazards = true;
        VipSystem sys(cfg);
        MrfDramLayout layout(sys.vaultBase(0), W, H, L);
        layout.upload(problem, sys.dram());
        BpVariant variant;
        variant.prefetchDepth = depth;
        sys.pe(0).loadProgram(genBpSweep(
            layout, variant,
            BpSweepJob{SweepDir::Right, 0, H}));
        sys.run(20'000'000);
        ASSERT_TRUE(sys.allIdle()) << "depth " << depth;
        BpState got(problem);
        layout.downloadMessages(got, sys.dram());
        for (unsigned y = 0; y < H; ++y) {
            for (unsigned x = 0; x < W; ++x) {
                for (unsigned l = 0; l < L; ++l) {
                    ASSERT_EQ(ref.msgAt(FromLeft, x, y)[l],
                              got.msgAt(FromLeft, x, y)[l])
                        << "depth " << depth;
                }
            }
        }
    }
}

TEST(ConvKernel, LargeFilterGroupFirstLayerStyle)
{
    // c1_1-style: 3 input channels, all 32 filters of a group resident
    // (exercises the wide parity accumulators).
    const unsigned C = 3, H = 6, W = 8, OC = 32, K = 3;
    Rng rng(35);
    FeatureMap in(C, H, W);
    for (auto &v : in.data)
        v = static_cast<Fx16>(rng.nextRange(-30, 30));
    const auto filters = randomWeights(
        static_cast<std::size_t>(OC) * C * K * K, rng, 4);
    const auto bias = randomWeights(OC, rng, 30);
    const FeatureMap want = convLayerVip(in, filters, bias, OC, K, C);

    ASSERT_GE(convFiltersResident(C), OC);

    SystemConfig cfg = makeSystemConfig(1, 1);
    cfg.pe.strictHazards = true;
    VipSystem sys(cfg);
    FmapDramLayout in_lay(sys.vaultBase(0), C, H, W, 1, true);
    FmapDramLayout out_lay(in_lay.end() + 4096, OC, H, W, 0, true);
    const Addr filt = out_lay.end() + 4096;
    const auto blob = packFilters(filters, C, K, 0, OC, 0, C);
    sys.dram().write(filt, blob.data(), blob.size() * 2);
    const Addr bias_addr = filt + blob.size() * 2 + 64;
    sys.dram().write(bias_addr, bias.data(), bias.size() * 2);
    in_lay.upload(in, sys.dram());

    ConvJob job;
    job.in = &in_lay;
    job.out = &out_lay;
    job.filterBlob = filt;
    job.biasBlob = bias_addr;
    job.zShard = C;
    job.filters = OC;
    job.rowBegin = 0;
    job.rowEnd = H;
    job.width = W;
    sys.pe(0).loadProgram(genConvPass(job));
    sys.run(50'000'000);
    ASSERT_TRUE(sys.allIdle());
    EXPECT_EQ(want.data, out_lay.download(sys.dram()).data);
    EXPECT_EQ(sys.pe(0).stats().timingHazards.value(), 0u);
}

TEST(Scratchpad, ReadyTimeTracking)
{
    Scratchpad sp;
    EXPECT_EQ(sp.readyAt(0, 64), 0u);
    sp.markReadyAt(10, 4, 100);
    EXPECT_EQ(sp.readyAt(10, 4), 100u);
    EXPECT_EQ(sp.readyAt(0, 10), 0u);
    EXPECT_TRUE(sp.hazardousRead(8, 8, 50));
    EXPECT_FALSE(sp.hazardousRead(8, 8, 100));
    // Streamed marks ramp by 8 bytes per cycle.
    sp.markReadyStream(100, 32, 200);
    EXPECT_EQ(sp.readyAt(100, 1), 200u);
    EXPECT_EQ(sp.readyAt(124, 1), 203u);
    // A streamed read starting at the same base chases the writer.
    EXPECT_FALSE(sp.hazardousStreamRead(100, 32, 200));
    EXPECT_TRUE(sp.hazardousStreamRead(100, 32, 199));
}

TEST(Arc, AllocateOverlapClear)
{
    ArcTable arc(3);
    EXPECT_EQ(arc.capacity(), 3u);
    const int a = arc.allocate(0, 32);
    const int b = arc.allocate(64, 128);
    EXPECT_GE(a, 0);
    EXPECT_GE(b, 0);
    EXPECT_TRUE(arc.overlaps(16, 48));
    EXPECT_TRUE(arc.overlaps(100, 101));
    EXPECT_FALSE(arc.overlaps(32, 64));
    EXPECT_FALSE(arc.overlaps(128, 256));
    const int c = arc.allocate(200, 201);
    EXPECT_GE(c, 0);
    EXPECT_TRUE(arc.full());
    EXPECT_EQ(arc.allocate(300, 301), -1);
    arc.clear(b);
    EXPECT_FALSE(arc.overlaps(64, 128));
    EXPECT_FALSE(arc.full());
    EXPECT_EQ(arc.liveCount(), 2u);
}

} // namespace
} // namespace vip
