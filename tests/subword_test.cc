/**
 * @file
 * The subword-parallelism claim of Sec. III: the 64-bit datapath
 * processes one 64-bit, two 32-bit, four 16-bit, or eight 8-bit
 * elements per cycle — "a peak throughput ranging from 320 GOp/s for
 * 64-bit data to 2,560 GOp/s for 8-bit data". We verify the cycle
 * scaling directly, and exercise the stock (vault-low) HMC address
 * mapping end to end.
 */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "kernels/runner.hh"
#include "workloads/fixed.hh"

namespace vip {
namespace {

/** Cycles to stream @p reps back-to-back adds of @p bytes-long
 *  vectors at element width @p w. */
Cycles
streamCycles(ElemWidth w, unsigned vector_bytes, unsigned reps)
{
    SystemConfig cfg = makeSystemConfig(1, 1);
    VipSystem sys(cfg);
    AsmBuilder b;
    b.movImm(1, vector_bytes / widthBytes(w));
    b.setVl(1);
    b.movImm(2, 0);
    b.movImm(3, 1024);
    for (unsigned i = 0; i < reps; ++i)
        b.vv(VecOp::Add, 3, 2, 2, w);
    b.vdrain();
    b.halt();
    sys.pe(0).loadProgram(b.finish());
    const Cycles start = sys.now();
    sys.run(1'000'000);
    EXPECT_TRUE(sys.allIdle());
    return sys.now() - start;
}

TEST(Subword, SameBytesTakeSameCyclesAtEveryWidth)
{
    // 256 bytes of work = 32 datapath cycles regardless of element
    // width: 32 x 64-bit, 64 x 32-bit, 128 x 16-bit, 256 x 8-bit.
    const Cycles w8 = streamCycles(ElemWidth::W8, 256, 16);
    const Cycles w16 = streamCycles(ElemWidth::W16, 256, 16);
    const Cycles w32 = streamCycles(ElemWidth::W32, 256, 16);
    const Cycles w64 = streamCycles(ElemWidth::W64, 256, 16);
    EXPECT_EQ(w8, w16);
    EXPECT_EQ(w16, w32);
    EXPECT_EQ(w32, w64);
}

TEST(Subword, ElementThroughputScalesWithWidth)
{
    // The same *element count* takes 8x longer at 64-bit than 8-bit:
    // the paper's 320 -> 2,560 GOp/s range.
    const unsigned elems = 256;  // 2 KiB at 64-bit: fits at sp 1024
    auto cycles_for = [&](ElemWidth w) {
        return streamCycles(w, elems * widthBytes(w), 12);
    };
    const Cycles c8 = cycles_for(ElemWidth::W8);
    const Cycles c64 = cycles_for(ElemWidth::W64);
    const double ratio = static_cast<double>(c64) /
                         static_cast<double>(c8);
    EXPECT_NEAR(ratio, 8.0, 0.8);

    // Peak ops/cycle at 16-bit: 12 adds of 256 elements in
    // ~12*64 cycles = ~4 vertical lane ops per cycle.
    const Cycles c16 = cycles_for(ElemWidth::W16);
    const double ops_per_cycle = 12.0 * elems / static_cast<double>(c16);
    EXPECT_GT(ops_per_cycle, 3.5);
    EXPECT_LE(ops_per_cycle, 4.1);
}

TEST(Subword, WideElementsComputeCorrectly)
{
    SystemConfig cfg = makeSystemConfig(1, 1);
    VipSystem sys(cfg);
    Pe &pe = sys.pe(0);
    pe.scratchpad().store<std::int32_t>(0, 1 << 20);
    pe.scratchpad().store<std::int32_t>(4, -77);
    pe.scratchpad().store<std::int32_t>(64, 3);
    pe.scratchpad().store<std::int32_t>(68, 1 << 30);
    AsmBuilder b;
    b.movImm(1, 2);
    b.setVl(1);
    b.movImm(2, 128);
    b.movImm(3, 0);
    b.movImm(4, 64);
    b.vv(VecOp::Mul, 2, 3, 4, ElemWidth::W32);
    b.halt();
    pe.loadProgram(b.finish());
    sys.run(100000);
    ASSERT_TRUE(sys.allIdle());
    EXPECT_EQ(pe.scratchpad().load<std::int32_t>(128), 3 << 20);
    // (1<<30) * -77 saturates int32.
    EXPECT_EQ(pe.scratchpad().load<std::int32_t>(132), INT32_MIN);
}

TEST(StockMapping, VaultLowInterleaveWorksEndToEnd)
{
    // The default HMC scheme spreads consecutive columns across
    // vaults (Sec. III-C). A PE still computes correctly; its 32-byte
    // column transfers simply fan out across the whole stack.
    SystemConfig cfg = makeSystemConfig(4, 1);
    cfg.mem.addrMap = AddrMap::RowBankColVault;
    VipSystem sys(cfg);

    for (unsigned i = 0; i < 64; ++i)
        sys.dram().store<Fx16>(4096 + 2 * i, static_cast<Fx16>(i * 3));

    AsmBuilder b;
    b.movImm(1, 64);  // 128 bytes: four 32 B columns, four vaults
    b.setVl(1);
    b.movImm(2, 0);
    b.movImm(3, 4096);
    b.ldSram(2, 3, 1);       // spans all four vaults
    b.movImm(4, 256);
    b.vv(VecOp::Add, 4, 2, 2);
    b.movImm(5, 8192);
    b.stSram(4, 5, 1);       // scatter back across vaults
    b.memfence();
    b.halt();
    sys.pe(0).loadProgram(b.finish());
    sys.run(1'000'000);
    ASSERT_TRUE(sys.allIdle());

    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(sys.dram().load<Fx16>(8192 + 2 * i), 6 * i);
    // The transfer really did fan out across every vault.
    unsigned vaults_touched = 0;
    for (unsigned v = 0; v < 4; ++v) {
        if (sys.hmc().vault(v).stats().readBytes.value() > 0)
            ++vaults_touched;
    }
    EXPECT_EQ(vaults_touched, 4u);
}

} // namespace
} // namespace vip
