/**
 * @file
 * Depth from stereo with belief propagation — the application VIP was
 * designed around (Sec. II-A) — running end to end on the simulated
 * machine: a synthetic random-dot stereogram becomes an MRF, four PEs
 * of one vault run BP-M iterations with barriers, and the decoded
 * disparity map is printed next to the ground truth.
 *
 *   $ ./examples/stereo_depth [width height labels iterations]
 */

#include <cstdio>
#include <cstdlib>

#include "kernels/bp_kernel.hh"
#include "kernels/layout.hh"
#include "kernels/runner.hh"
#include "sim/rng.hh"
#include "workloads/stereo.hh"

using namespace vip;

namespace {

void
printMap(const char *title, const std::vector<std::uint8_t> &map,
         unsigned w, unsigned h)
{
    std::printf("%s\n", title);
    // Downsample to at most ~64 columns of ASCII.
    const unsigned step = std::max(1u, w / 64);
    for (unsigned y = 0; y < h; y += 2 * step) {
        for (unsigned x = 0; x < w; x += step)
            std::printf("%c", " .:-=+*#%@"[std::min<unsigned>(
                                 map[y * w + x], 9)]);
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned W = argc > 1 ? std::atoi(argv[1]) : 64;
    const unsigned H = argc > 2 ? std::atoi(argv[2]) : 32;
    const unsigned L = argc > 3 ? std::atoi(argv[3]) : 8;
    const unsigned iters = argc > 4 ? std::atoi(argv[4]) : 3;

    std::printf("synthesizing a %ux%u stereo pair (%u disparities)...\n",
                W, H, L);
    Rng rng(2024);
    const StereoPair pair = makeSyntheticStereo(W, H, L, rng);
    MrfProblem mrf = stereoMrf(pair, L, 20, 4, 16);

    // One vault, four PEs — one of the paper's 32 parallel tiles.
    SystemConfig cfg = makeSystemConfig(1, 4);
    cfg.pe.strictHazards = true;  // prove the kernel is well-scheduled
    VipSystem sys(cfg);
    MrfDramLayout layout(sys.vaultBase(0), W, H, L);
    layout.upload(mrf, sys.dram());
    const Addr flags = layout.end() + 64;

    const unsigned num_pes = 4;
    for (unsigned pe = 0; pe < num_pes; ++pe) {
        auto slice = [&](unsigned lanes) {
            const unsigned per = (lanes + num_pes - 1) / num_pes;
            const unsigned b = std::min(lanes, pe * per);
            return std::make_pair(b, std::min(lanes, b + per));
        };
        const auto [hb, he] = slice(H);
        const auto [vb, ve] = slice(W);
        BpSweepJob jobs[4] = {{SweepDir::Right, hb, he},
                              {SweepDir::Left, hb, he},
                              {SweepDir::Down, vb, ve},
                              {SweepDir::Up, vb, ve}};
        sys.pe(pe).loadProgram(genBpIterations(layout, BpVariant{}, jobs,
                                               iters, flags, pe,
                                               num_pes));
    }

    std::printf("running %u BP-M iterations on 4 PEs...\n", iters);
    const Cycles cycles = sys.run();
    std::printf("done in %llu cycles = %.3f ms of VIP time "
                "(%.1f GOp/s/vault, %.1f GB/s/vault)\n",
                static_cast<unsigned long long>(cycles),
                cyclesToMs(cycles), sys.achievedGops(),
                sys.achievedBandwidthGBs());

    // Decode from the simulated messages.
    BpState result(mrf);
    layout.downloadMessages(result, sys.dram());
    const auto labels = result.decode();

    printMap("\nground truth:", pair.groundTruth, W, H);
    printMap("\nVIP disparity:", labels, W, H);

    const double acc = disparityAccuracy(pair, labels, 1);
    std::printf("\ndisparity accuracy (within 1 level): %.1f%%\n",
                100.0 * acc);

    // Cross-check against the reference implementation, bit for bit.
    BpState ref(mrf);
    for (unsigned i = 0; i < iters; ++i)
        ref.iterate();
    const bool exact = ref.decode() == labels;
    std::printf("bit-exact vs reference BP-M: %s\n",
                exact ? "yes" : "NO");
    return exact && acc > 0.5 ? 0 : 1;
}
