/**
 * @file
 * Writing your own VIP kernel with the AsmBuilder: a k-nearest-
 * centroid classifier, exercising m.v compositions beyond the paper's
 * two workloads — the programmability argument of Table I.
 *
 *   $ ./examples/custom_kernel
 *
 * For each query vector q and centroid matrix C (one centroid per
 * row), the kernel computes the L1 distance to every centroid with
 * two composed instructions per query:
 *   d+ = m.v.sub.add (C - q, accumulated)      [sum of differences]
 * is not an absolute value, so instead we use the standard max-trick:
 *   d  = m.v.max.add(C, q') + m.v.max.add(-C, -q') - sum(C) - sum(q)
 * Simpler and fully in-ISA: we compute squared-distance surrogates
 *   s = -2 * C q + ||C||^2     (argmin_s == argmin distance)
 * with one m.v.mul.add per query plus a precomputed per-centroid
 * bias — exactly how the FC kernel fuses its bias.
 */

#include <cstdio>

#include "isa/builder.hh"
#include "kernels/runner.hh"
#include "sim/rng.hh"
#include "workloads/fixed.hh"

using namespace vip;

int
main()
{
    const unsigned DIM = 16, CENTROIDS = 8, QUERIES = 12;
    Rng rng(99);

    // Centroids, their squared norms, and queries.
    std::vector<Fx16> centroids(CENTROIDS * DIM), queries(QUERIES * DIM);
    for (auto &v : centroids)
        v = static_cast<Fx16>(rng.nextRange(-40, 40));
    for (auto &v : queries)
        v = static_cast<Fx16>(rng.nextRange(-40, 40));
    std::vector<Fx16> norm_bias(CENTROIDS);
    for (unsigned c = 0; c < CENTROIDS; ++c) {
        std::int64_t n = 0;
        for (unsigned d = 0; d < DIM; ++d) {
            const std::int64_t v = centroids[c * DIM + d];
            n += v * v;
        }
        norm_bias[c] = sat16(n / 2);  // (||C||^2)/2 keeps int16 range
    }

    SystemConfig cfg = makeSystemConfig(1, 1);
    cfg.pe.strictHazards = true;
    VipSystem sys(cfg);
    const Addr a_cent = sys.vaultBase(0);
    const Addr a_bias = a_cent + centroids.size() * 2 + 64;
    const Addr a_query = a_bias + norm_bias.size() * 2 + 64;
    const Addr a_out = a_query + queries.size() * 2 + 64;
    sys.dram().write(a_cent, centroids.data(), centroids.size() * 2);
    sys.dram().write(a_bias, norm_bias.data(), norm_bias.size() * 2);
    sys.dram().write(a_query, queries.data(), queries.size() * 2);

    // Scratchpad map.
    const unsigned SP_CENT = 0;                      // CENTROIDS x DIM
    const unsigned SP_BIAS = SP_CENT + CENTROIDS * DIM * 2;
    const unsigned SP_Q = SP_BIAS + CENTROIDS * 2;   // one query
    const unsigned SP_DOT = SP_Q + DIM * 2;          // scores
    const unsigned SP_OUT = SP_DOT + CENTROIDS * 2;  // running scores

    AsmBuilder b;
    b.movImm(1, DIM);
    b.setVl(1);
    b.movImm(2, CENTROIDS);
    b.setMr(2);
    b.movImm(3, SP_CENT);
    b.movImm(4, SP_BIAS);
    b.movImm(5, SP_Q);
    b.movImm(6, SP_DOT);
    b.movImm(7, SP_OUT);
    b.movImm(8, CENTROIDS);  // vector length for score math
    // Load centroids and biases once; they stay resident.
    b.movImm(10, static_cast<std::int64_t>(a_cent));
    b.movImm(11, static_cast<std::int64_t>(CENTROIDS * DIM));
    b.ldSram(3, 10, 11);
    b.movImm(10, static_cast<std::int64_t>(a_bias));
    b.ldSram(4, 10, 8);

    // Loop over queries.
    b.movImm(20, static_cast<std::int64_t>(a_query));  // query ptr
    b.movImm(21, static_cast<std::int64_t>(a_out));    // out ptr
    b.movImm(22, 2 * DIM);   // query stride
    b.movImm(23, 2 * CENTROIDS);
    b.movImm(24, 0);         // counter
    b.movImm(25, QUERIES);

    const auto loop = b.newLabel();
    b.bind(loop);
    b.ldSram(5, 20, 1);                      // fetch the query
    b.mv(VecOp::Mul, RedOp::Add, 6, 3, 5);   // dot(C_r, q) per row
    b.setVl(8);
    b.vdrain();                              // short vectors: fence
    b.vv(VecOp::Sub, 7, 4, 6);               // ||C||^2/2 - dot
    b.vdrain();
    b.stSram(7, 21, 8);
    b.setVl(1);
    b.scalar(ScalarOp::Add, 20, 20, 22);
    b.scalar(ScalarOp::Add, 21, 21, 23);
    b.addImm(24, 24, 1);
    b.branch(BranchCond::Lt, 24, 25, loop);
    b.memfence();
    b.halt();

    sys.pe(0).loadProgram(b.finish());

    const Cycles cycles = sys.run();
    std::printf("classified %u queries in %llu cycles "
                "(%.1f cycles/query)\n",
                QUERIES, static_cast<unsigned long long>(cycles),
                static_cast<double>(cycles) / QUERIES);

    // Reference check: argmin of (||C||^2/2 - dot) == nearest centroid
    // by squared distance.
    unsigned correct = 0;
    for (unsigned q = 0; q < QUERIES; ++q) {
        // Reference nearest centroid (exact arithmetic).
        unsigned ref_best = 0;
        std::int64_t ref_score = INT64_MAX;
        for (unsigned c = 0; c < CENTROIDS; ++c) {
            std::int64_t dist = 0;
            for (unsigned d = 0; d < DIM; ++d) {
                const std::int64_t diff = centroids[c * DIM + d] -
                                          queries[q * DIM + d];
                dist += diff * diff;
            }
            if (dist < ref_score) {
                ref_score = dist;
                ref_best = c;
            }
        }
        // Simulated scores.
        unsigned got_best = 0;
        Fx16 got_score = INT16_MAX;
        for (unsigned c = 0; c < CENTROIDS; ++c) {
            const Fx16 s = sys.dram().load<Fx16>(a_out +
                                                 (q * CENTROIDS + c) *
                                                     2);
            if (s < got_score) {
                got_score = s;
                got_best = c;
            }
        }
        if (got_best == ref_best)
            ++correct;
    }
    std::printf("nearest-centroid agreement with exact reference: "
                "%u/%u\n", correct, QUERIES);
    return correct == QUERIES ? 0 : 1;
}
