; One min-sum belief-propagation message update (paper Fig. 2).
;
; theta-hat = data + mA + mB + mC       (Eq. 1a, three v.v.adds)
; message   = min-reduce(S + theta-hat) (Eq. 1b, one m.v.add.min)
;
; Expects L = 8 labels: data at 0x1000, incoming messages at 0x1100,
; 0x1200, 0x1300, the 8x8 smoothness matrix at 0x2000, and writes the
; outgoing message to 0x3000.
    mov.imm r61, 8
    set.vl r61
    set.mr r61
    mov.imm r5, 64        ; smoothness elements (L*L)
    mov.imm r6, 0x2000
    mov.imm r15, 0        ; sp: smoothness matrix
    ld.sram[16] r15, r6, r5
    mov.imm r7, 0x1000
    mov.imm r8, 0x1100
    mov.imm r9, 0x1200
    mov.imm r10, 0x1300
    mov.imm r11, 512      ; sp: data
    mov.imm r12, 544      ; sp: messages
    mov.imm r13, 576
    mov.imm r14, 608
    ld.sram[16] r11, r7, r61
    ld.sram[16] r12, r8, r61
    ld.sram[16] r13, r9, r61
    ld.sram[16] r14, r10, r61
    v.v.add[16] r11, r11, r12   ; theta-hat, in place
    v.v.add[16] r11, r11, r13
    v.v.add[16] r11, r11, r14
    mov.imm r16, 640            ; sp: outgoing message
    m.v.add.min[16] r16, r15, r11
    v.drain
    mov.imm r17, 0x3000
    st.sram[16] r16, r17, r61
    memfence
    halt
