; Dot product of two 8-element vectors with m.v.mul.add (MR = 1).
;
;   vip-run dot_product.s --dram 0x1000=2 --dram 0x1002=3 \
;       --dram 0x1100=10 --dram 0x1102=20 --dump-dram 0x2000,1
;
; Inputs: vector A at 0x1000, vector B at 0x1100 (16-bit elements).
; Output: one 16-bit dot product at 0x2000.
    mov.imm r1, 8         ; vector length
    set.vl r1
    mov.imm r2, 1         ; one matrix row
    set.mr r2
    mov.imm r10, 0x1000
    mov.imm r11, 0x1100
    mov.imm r12, 0x2000
    mov.imm r20, 0        ; scratchpad: A
    mov.imm r21, 64       ; scratchpad: B
    mov.imm r22, 128      ; scratchpad: result
    ld.sram[16] r20, r10, r1
    ld.sram[16] r21, r11, r1
    m.v.mul.add[16] r22, r20, r21
    v.drain
    st.sram[16] r22, r12, r2
    memfence
    halt
