/**
 * @file
 * Quickstart: assemble a small VIP program from text (the paper's
 * Fig. 2 notation), run it on one simulated PE, and inspect results.
 *
 *   $ ./examples/quickstart
 *
 * The program computes one min-sum belief-propagation message update:
 * theta-hat = data + three incoming messages (v.v.add chain), then
 * message = min-reduction of (smoothness row + theta-hat) per output
 * label (m.v.add.min) — the composed operation that sets VIP apart
 * from MAC-only accelerators (Sec. II-D).
 */

#include <cstdio>

#include "isa/assembler.hh"
#include "kernels/runner.hh"
#include "system/system.hh"
#include "workloads/mrf.hh"

using namespace vip;

int
main()
{
    // A one-vault, one-PE machine. makeSystemConfig(32, 4) would give
    // the paper's full 128-PE system.
    SystemConfig cfg = makeSystemConfig(1, 1);
    VipSystem sys(cfg);

    const unsigned L = 8;  // labels

    // Stage inputs in DRAM: a data-cost vector, three incoming
    // messages, and an L x L truncated-linear smoothness matrix.
    const Addr data = sys.vaultBase(0);
    const Addr msg_a = data + 64, msg_b = msg_a + 64, msg_c = msg_b + 64;
    const Addr smooth = msg_c + 64;
    const Addr result = smooth + 1024;
    for (unsigned l = 0; l < L; ++l) {
        sys.dram().store<Fx16>(data + 2 * l, static_cast<Fx16>(3 * l));
        sys.dram().store<Fx16>(msg_a + 2 * l, static_cast<Fx16>(l));
        sys.dram().store<Fx16>(msg_b + 2 * l,
                               static_cast<Fx16>(10 - l));
        sys.dram().store<Fx16>(msg_c + 2 * l, static_cast<Fx16>(2));
    }
    const auto s = truncatedLinearSmoothness(L, 2, 6);
    sys.dram().write(smooth, s.data(), s.size() * 2);

    // The kernel, in the paper's assembly notation. Scratchpad map:
    // smoothness at 0, operands at 512.., theta-hat at 768.
    char src[1024];
    std::snprintf(src, sizeof(src), R"(
    mov.imm r61, %u          ; vector length = L
    set.vl r61
    set.mr r61               ; smoothness matrix is L x L
    mov.imm r20, %llu        ; DRAM addresses
    mov.imm r21, %llu
    mov.imm r22, %llu
    mov.imm r23, %llu
    mov.imm r24, %llu
    mov.imm r25, %llu
    mov.imm r15, 0           ; sp: smoothness
    mov.imm r7, 512          ; sp: data
    mov.imm r8, 544          ; sp: messages
    mov.imm r9, 576
    mov.imm r10, 608
    mov.imm r11, 768         ; sp: theta-hat
    mov.imm r12, 832         ; sp: outgoing message
    mov.imm r62, %u          ; L*L elements
    ld.sram[16] r15, r24, r62
    ld.sram[16] r7, r20, r61 ; load data cost
    ld.sram[16] r8, r21, r61 ; load messages
    ld.sram[16] r9, r22, r61
    ld.sram[16] r10, r23, r61
    v.v.add[16] r11, r7, r8  ; theta-hat (Eq. 1a)
    v.v.add[16] r11, r11, r9
    v.v.add[16] r11, r11, r10
    m.v.add.min[16] r12, r15, r11 ; message (Eq. 1b)
    v.drain
    st.sram[16] r12, r25, r61
    memfence
    halt
)",
                  L, (unsigned long long)data, (unsigned long long)msg_a,
                  (unsigned long long)msg_b, (unsigned long long)msg_c,
                  (unsigned long long)smooth,
                  (unsigned long long)result, L * L);

    const auto prog = assemble(src);
    std::printf("assembled %zu instructions\n", prog.size());

    sys.pe(0).loadProgram(prog);
    const Cycles cycles = sys.run();

    std::printf("finished in %llu cycles (%.1f ns at 1.25 GHz)\n",
                static_cast<unsigned long long>(cycles),
                static_cast<double>(cycles) * 0.8);

    // Cross-check against the reference semantics.
    std::printf("\n%-8s %10s %10s\n", "label", "simulated", "reference");
    Fx16 theta[8];
    for (unsigned l = 0; l < L; ++l) {
        theta[l] = addSat(
            addSat(addSat(static_cast<Fx16>(3 * l),
                          static_cast<Fx16>(l)),
                   static_cast<Fx16>(10 - l)),
            2);
    }
    bool all_ok = true;
    for (unsigned l = 0; l < L; ++l) {
        const Fx16 want = addMinReduce(s.data() + l * L, theta, L);
        const Fx16 got = sys.dram().load<Fx16>(result + 2 * l);
        std::printf("%-8u %10d %10d%s\n", l, got, want,
                    got == want ? "" : "   <-- MISMATCH");
        all_ok = all_ok && got == want;
    }
    std::printf("\n%s\n", all_ok ? "simulation matches the reference"
                                 : "MISMATCH");
    std::printf("vector ALU ops: %llu (3L + 2L^2 = %u)\n",
                static_cast<unsigned long long>(sys.pe(0).vectorOps()),
                3 * L + 2 * L * L);
    return all_ok ? 0 : 1;
}
