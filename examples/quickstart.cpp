/**
 * @file
 * Quickstart: assemble a small VIP program from text (the paper's
 * Fig. 2 notation), run it on one simulated PE via the `Simulation`
 * facade, and inspect results.
 *
 *   $ ./examples/quickstart
 *
 * The program computes one min-sum belief-propagation message update:
 * theta-hat = data + three incoming messages (v.v.add chain), then
 * message = min-reduction of (smoothness row + theta-hat) per output
 * label (m.v.add.min) — the composed operation that sets VIP apart
 * from MAC-only accelerators (Sec. II-D).
 */

#include <cstdio>

#include "system/simulation.hh"
#include "workloads/mrf.hh"

using namespace vip;

int
main()
{
    // A one-vault, one-PE machine. makeSystemConfig(32, 4) would give
    // the paper's full 128-PE system.
    Simulation sim(makeSystemConfig(1, 1));

    const unsigned L = 8;  // labels

    // Stage inputs in DRAM: a data-cost vector, three incoming
    // messages, and an L x L truncated-linear smoothness matrix.
    const Addr data = sim.vaultBase();
    const Addr msg_a = data + 64, msg_b = msg_a + 64, msg_c = msg_b + 64;
    const Addr smooth = msg_c + 64;
    const Addr result = smooth + 1024;
    std::vector<std::int16_t> costs, in_a, in_b, in_c;
    for (unsigned l = 0; l < L; ++l) {
        costs.push_back(static_cast<Fx16>(3 * l));
        in_a.push_back(static_cast<Fx16>(l));
        in_b.push_back(static_cast<Fx16>(10 - l));
        in_c.push_back(static_cast<Fx16>(2));
    }
    const auto s = truncatedLinearSmoothness(L, 2, 6);

    // The kernel, in the paper's assembly notation. Scratchpad map:
    // smoothness at 0, operands at 512.., theta-hat at 768.
    char src[1024];
    std::snprintf(src, sizeof(src), R"(
    mov.imm r61, %u          ; vector length = L
    set.vl r61
    set.mr r61               ; smoothness matrix is L x L
    mov.imm r20, %llu        ; DRAM addresses
    mov.imm r21, %llu
    mov.imm r22, %llu
    mov.imm r23, %llu
    mov.imm r24, %llu
    mov.imm r25, %llu
    mov.imm r15, 0           ; sp: smoothness
    mov.imm r7, 512          ; sp: data
    mov.imm r8, 544          ; sp: messages
    mov.imm r9, 576
    mov.imm r10, 608
    mov.imm r11, 768         ; sp: theta-hat
    mov.imm r12, 832         ; sp: outgoing message
    mov.imm r62, %u          ; L*L elements
    ld.sram[16] r15, r24, r62
    ld.sram[16] r7, r20, r61 ; load data cost
    ld.sram[16] r8, r21, r61 ; load messages
    ld.sram[16] r9, r22, r61
    ld.sram[16] r10, r23, r61
    v.v.add[16] r11, r7, r8  ; theta-hat (Eq. 1a)
    v.v.add[16] r11, r11, r9
    v.v.add[16] r11, r11, r10
    m.v.add.min[16] r12, r15, r11 ; message (Eq. 1b)
    v.drain
    st.sram[16] r12, r25, r61
    memfence
    halt
)",
                  L, (unsigned long long)data, (unsigned long long)msg_a,
                  (unsigned long long)msg_b, (unsigned long long)msg_c,
                  (unsigned long long)smooth,
                  (unsigned long long)result, L * L);

    // The whole stage-load-run workflow is one fluent chain.
    const RunResult run =
        sim.pokeDram(data, costs)
            .pokeDram(msg_a, in_a)
            .pokeDram(msg_b, in_b)
            .pokeDram(msg_c, in_c)
            .pokeDram(smooth, std::vector<std::int16_t>(s.begin(),
                                                        s.end()))
            .loadProgram(0, src)
            .run();

    std::printf("finished in %llu cycles (%.1f ns at 1.25 GHz), "
                "halted cleanly: %s\n",
                static_cast<unsigned long long>(run.cycles),
                static_cast<double>(run.cycles) * 0.8,
                run.haltedCleanly ? "yes" : "no");

    // Cross-check against the reference semantics.
    std::printf("\n%-8s %10s %10s\n", "label", "simulated", "reference");
    Fx16 theta[8];
    for (unsigned l = 0; l < L; ++l) {
        theta[l] = addSat(
            addSat(addSat(static_cast<Fx16>(3 * l),
                          static_cast<Fx16>(l)),
                   static_cast<Fx16>(10 - l)),
            2);
    }
    const auto got = sim.peekDram(result, L);
    bool all_ok = true;
    for (unsigned l = 0; l < L; ++l) {
        const Fx16 want = addMinReduce(s.data() + l * L, theta, L);
        std::printf("%-8u %10d %10d%s\n", l, got[l], want,
                    got[l] == want ? "" : "   <-- MISMATCH");
        all_ok = all_ok && got[l] == want;
    }
    std::printf("\n%s\n", all_ok ? "simulation matches the reference"
                                 : "MISMATCH");
    std::printf("vector ALU ops: %llu (3L + 2L^2 = %u)\n",
                static_cast<unsigned long long>(
                    sim.system().pe(0).vectorOps()),
                3 * L + 2 * L * L);
    return all_ok ? 0 : 1;
}
