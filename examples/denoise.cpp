/**
 * @file
 * MRF image de-noising on VIP — another of the labeling tasks the
 * paper's introduction motivates (Sec. II-A: "image de-noising,
 * depth-from-stereo, or detecting optical flow"). The labels are
 * intensity levels; data costs penalize deviation from the observed
 * noisy pixel and the truncated-linear smoothness prior favors
 * piecewise-constant reconstructions.
 *
 *   $ ./examples/denoise [width height levels iterations]
 */

#include <cstdio>
#include <cstdlib>

#include "kernels/bp_kernel.hh"
#include "kernels/layout.hh"
#include "kernels/runner.hh"
#include "sim/rng.hh"
#include "workloads/mrf.hh"

using namespace vip;

namespace {

void
printImage(const char *title, const std::vector<std::uint8_t> &img,
           unsigned w, unsigned h, unsigned levels)
{
    std::printf("%s\n", title);
    const char *ramp = " .:-=+*#%@";
    for (unsigned y = 0; y < h; y += 2) {
        for (unsigned x = 0; x < w; ++x) {
            const unsigned v = img[y * w + x] * 9 / (levels - 1);
            std::printf("%c", ramp[std::min(v, 9u)]);
        }
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned W = argc > 1 ? std::atoi(argv[1]) : 56;
    const unsigned H = argc > 2 ? std::atoi(argv[2]) : 28;
    const unsigned L = argc > 3 ? std::atoi(argv[3]) : 8;
    const unsigned iters = argc > 4 ? std::atoi(argv[4]) : 3;

    // Ground truth: flat background with two rectangles, then salt
    // noise flipping 20% of pixels to random levels.
    Rng rng(77);
    std::vector<std::uint8_t> truth(W * H, 1);
    for (unsigned y = H / 4; y < 3 * H / 4; ++y) {
        for (unsigned x = W / 6; x < W / 2; ++x)
            truth[y * W + x] = static_cast<std::uint8_t>(L - 2);
    }
    for (unsigned y = H / 3; y < 2 * H / 3; ++y) {
        for (unsigned x = 3 * W / 5; x < 9 * W / 10; ++x)
            truth[y * W + x] = static_cast<std::uint8_t>(L / 2);
    }
    std::vector<std::uint8_t> noisy = truth;
    unsigned flipped = 0;
    for (auto &v : noisy) {
        if (rng.nextBelow(100) < 20) {
            v = static_cast<std::uint8_t>(rng.nextBelow(L));
            ++flipped;
        }
    }

    // The MRF: quadratic-ish data cost, truncated-linear smoothness.
    MrfProblem mrf;
    mrf.width = W;
    mrf.height = H;
    mrf.labels = L;
    mrf.smoothCost = truncatedLinearSmoothness(L, 6, 24);
    mrf.dataCost.resize(static_cast<std::size_t>(W) * H * L);
    for (unsigned y = 0; y < H; ++y) {
        for (unsigned x = 0; x < W; ++x) {
            Fx16 *cost = mrf.dataCost.data() + mrf.pixelIndex(x, y);
            const int obs = noisy[y * W + x];
            for (unsigned l = 0; l < L; ++l) {
                const int d = std::abs(static_cast<int>(l) - obs);
                cost[l] = static_cast<Fx16>(std::min(4 * d * d, 36));
            }
        }
    }

    // Run on one vault (4 PEs) of the simulated machine.
    SystemConfig cfg = makeSystemConfig(1, 4);
    cfg.pe.strictHazards = true;
    VipSystem sys(cfg);
    MrfDramLayout layout(sys.vaultBase(0), W, H, L);
    layout.upload(mrf, sys.dram());
    const Addr flags = layout.end() + 64;
    for (unsigned pe = 0; pe < 4; ++pe) {
        auto slice = [&](unsigned lanes) {
            const unsigned per = (lanes + 3) / 4;
            const unsigned b = std::min(lanes, pe * per);
            return std::make_pair(b, std::min(lanes, b + per));
        };
        const auto [hb, he] = slice(H);
        const auto [vb, ve] = slice(W);
        BpSweepJob jobs[4] = {{SweepDir::Right, hb, he},
                              {SweepDir::Left, hb, he},
                              {SweepDir::Down, vb, ve},
                              {SweepDir::Up, vb, ve}};
        sys.pe(pe).loadProgram(genBpIterations(layout, BpVariant{}, jobs,
                                               iters, flags, pe, 4));
    }
    const Cycles cycles = sys.run();

    BpState result(mrf);
    layout.downloadMessages(result, sys.dram());
    const auto denoised = result.decode();

    printImage("\nnoisy input:", noisy, W, H, L);
    printImage("\nVIP de-noised:", denoised, W, H, L);

    unsigned noisy_err = 0, clean_err = 0;
    for (unsigned i = 0; i < truth.size(); ++i) {
        noisy_err += noisy[i] != truth[i];
        clean_err += denoised[i] != truth[i];
    }
    std::printf("\nflipped pixels: %u; wrong before: %u, wrong after: "
                "%u\n", flipped, noisy_err, clean_err);
    std::printf("simulated %llu cycles (%.3f ms of VIP time)\n",
                static_cast<unsigned long long>(cycles),
                cyclesToMs(cycles));
    const bool improved = clean_err * 2 < noisy_err;
    std::printf("de-noising %s\n",
                improved ? "recovered the image" : "FAILED");
    return improved ? 0 : 1;
}
