/**
 * @file
 * Optical flow on VIP — the third labeling task from the paper's
 * introduction (Sec. II-A). Labels enumerate 2D displacements, so the
 * smoothness cost is a genuinely two-dimensional table: exactly the
 * "no assumptions on the structure of the smoothness cost" generality
 * the paper claims over fixed-function BP accelerators (Sec. V-B).
 *
 *   $ ./examples/optical_flow [width height radius iterations]
 */

#include <cstdio>
#include <cstdlib>

#include "kernels/bp_kernel.hh"
#include "kernels/layout.hh"
#include "kernels/runner.hh"
#include "sim/rng.hh"
#include "workloads/flow.hh"

using namespace vip;

namespace {

void
printFlow(const char *title, const FlowPair &pair,
          const std::vector<std::uint8_t> &labels)
{
    // One arrow glyph per motion vector.
    std::printf("%s\n", title);
    for (unsigned y = 0; y < pair.height; y += 2) {
        for (unsigned x = 0; x < pair.width; ++x) {
            const auto [dx, dy] =
                pair.displacement(labels[y * pair.width + x]);
            char c = '.';
            if (dx == 0 && dy == 0) c = 'o';
            else if (dx > 0 && dy == 0) c = '>';
            else if (dx < 0 && dy == 0) c = '<';
            else if (dy > 0 && dx == 0) c = 'v';
            else if (dy < 0 && dx == 0) c = '^';
            else c = 'x';
            std::printf("%c", c);
        }
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned W = argc > 1 ? std::atoi(argv[1]) : 48;
    const unsigned H = argc > 2 ? std::atoi(argv[2]) : 24;
    const unsigned R = argc > 3 ? std::atoi(argv[3]) : 1;
    const unsigned iters = argc > 4 ? std::atoi(argv[4]) : 3;

    Rng rng(4096);
    const FlowPair pair = makeSyntheticFlow(W, H, R, rng);
    MrfProblem mrf = flowMrf(pair, 20, 5, 20);
    std::printf("flow MRF: %ux%u pixels, %u displacement labels\n", W, H,
                pair.labels());

    SystemConfig cfg = makeSystemConfig(1, 4);
    cfg.pe.strictHazards = true;
    VipSystem sys(cfg);
    MrfDramLayout layout(sys.vaultBase(0), W, H, mrf.labels);
    layout.upload(mrf, sys.dram());
    const Addr flags = layout.end() + 64;
    for (unsigned pe = 0; pe < 4; ++pe) {
        auto slice = [&](unsigned lanes) {
            const unsigned per = (lanes + 3) / 4;
            const unsigned b = std::min(lanes, pe * per);
            return std::make_pair(b, std::min(lanes, b + per));
        };
        const auto [hb, he] = slice(H);
        const auto [vb, ve] = slice(W);
        BpSweepJob jobs[4] = {{SweepDir::Right, hb, he},
                              {SweepDir::Left, hb, he},
                              {SweepDir::Down, vb, ve},
                              {SweepDir::Up, vb, ve}};
        sys.pe(pe).loadProgram(genBpIterations(layout, BpVariant{}, jobs,
                                               iters, flags, pe, 4));
    }
    const Cycles cycles = sys.run();

    BpState result(mrf);
    layout.downloadMessages(result, sys.dram());
    const auto labels = result.decode();

    printFlow("\nground-truth motion:", pair, pair.groundTruth);
    printFlow("\nVIP motion field:", pair, labels);

    const double acc = flowAccuracy(pair, labels);
    std::printf("\nexact-displacement accuracy: %.1f%%\n", 100.0 * acc);
    std::printf("simulated %llu cycles (%.3f ms of VIP time)\n",
                static_cast<unsigned long long>(cycles),
                cyclesToMs(cycles));

    BpState ref(mrf);
    for (unsigned i = 0; i < iters; ++i)
        ref.iterate();
    const bool exact = ref.decode() == labels;
    std::printf("bit-exact vs reference BP-M: %s\n", exact ? "yes" : "NO");
    return exact && acc > 0.7 ? 0 : 1;
}
