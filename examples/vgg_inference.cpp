/**
 * @file
 * A miniature VGG-style network — conv/ReLU, max-pool, and a
 * fully-connected classifier — running end to end on the simulated
 * VIP machine (Sec. IV-B/IV-C kernels) and verified bit-for-bit
 * against the reference implementation.
 *
 *   $ ./examples/vgg_inference
 *
 * Architecture (channel-last layouts throughout, as the paper's code
 * keeps "outputs in the right location to be consumed by the next
 * layer"):
 *   input 8x8x8 -> conv3x3(16) + ReLU -> pool2x2 -> fc(10)
 */

#include <cstdio>

#include "kernels/conv_kernel.hh"
#include "kernels/fc_kernel.hh"
#include "kernels/layout.hh"
#include "kernels/pool_kernel.hh"
#include "kernels/runner.hh"
#include "sim/rng.hh"
#include "workloads/nn.hh"

using namespace vip;

int
main()
{
    const unsigned C = 8, H = 8, W = 8, OC = 16, CLASSES = 10;
    Rng rng(7);

    // Network parameters and input.
    FeatureMap input(C, H, W);
    for (auto &v : input.data)
        v = static_cast<Fx16>(rng.nextRange(-20, 20));
    const auto conv_w = randomWeights(
        static_cast<std::size_t>(OC) * C * 9, rng, 3);
    const auto conv_b = randomWeights(OC, rng, 20);
    const unsigned flat = OC * (H / 2) * (W / 2);
    const auto fc_w = randomWeights(
        static_cast<std::size_t>(CLASSES) * flat, rng, 2);
    const auto fc_b = randomWeights(CLASSES, rng, 30);

    // Reference pipeline.
    const FeatureMap ref_conv = convLayerVip(input, conv_w, conv_b, OC,
                                             3, C);
    const FeatureMap ref_pool = maxPool(ref_conv, 2);
    // The FC consumes the pooled map in the kernel's [y][x][c] order.
    std::vector<Fx16> ref_flat;
    for (unsigned y = 0; y < ref_pool.height; ++y) {
        for (unsigned x = 0; x < ref_pool.width; ++x) {
            for (unsigned c = 0; c < OC; ++c)
                ref_flat.push_back(ref_pool.at(c, y, x));
        }
    }
    const auto ref_out = fcLayerSegmented(ref_flat, fc_w, fc_b, CLASSES,
                                          1, false);

    // Simulated machine: one vault, 4 PEs.
    SystemConfig cfg = makeSystemConfig(1, 4);
    cfg.pe.strictHazards = true;
    VipSystem sys(cfg);
    const Addr base = sys.vaultBase(0);

    FmapDramLayout in_lay(base, C, H, W, 1);
    FmapDramLayout conv_lay(in_lay.end() + 4096, OC, H, W, 0);
    FmapDramLayout pool_lay(conv_lay.end() + 4096, OC, H / 2, W / 2, 0);
    const Addr filt = pool_lay.end() + 4096;
    const Addr bias = filt + (1 << 16);
    const Addr fcw = bias + 4096;
    const Addr fcb = fcw + fc_w.size() * 2 + 4096;
    const Addr logits = fcb + 4096;

    in_lay.upload(input, sys.dram());
    const auto blob = packFilters(conv_w, C, 3, 0, OC, 0, C);
    sys.dram().write(filt, blob.data(), blob.size() * 2);
    sys.dram().write(bias, conv_b.data(), conv_b.size() * 2);
    sys.dram().write(fcw, fc_w.data(), fc_w.size() * 2);
    sys.dram().write(fcb, fc_b.data(), fc_b.size() * 2);

    // Layer 1: convolution, rows split across the 4 PEs.
    for (unsigned pe = 0; pe < 4; ++pe) {
        ConvJob job;
        job.in = &in_lay;
        job.out = &conv_lay;
        job.filterBlob = filt;
        job.biasBlob = bias;
        job.zShard = C;
        job.filters = OC;
        job.rowBegin = pe * (H / 4);
        job.rowEnd = (pe + 1) * (H / 4);
        job.width = W;
        sys.pe(pe).loadProgram(genConvPass(job));
    }
    Cycles t0 = sys.now();
    sys.run();
    std::printf("conv  : %6llu cycles\n",
                static_cast<unsigned long long>(sys.now() - t0));

    // Layer 2: 2x2 max pooling.
    for (unsigned pe = 0; pe < 4; ++pe) {
        PoolJob job;
        job.in = &conv_lay;
        job.out = &pool_lay;
        job.rowBegin = pe * (H / 8);
        job.rowEnd = (pe + 1) * (H / 8);
        job.width = W / 2;
        job.chunk = OC;
        sys.pe(pe).loadProgram(genPool(job));
    }
    t0 = sys.now();
    sys.run();
    std::printf("pool  : %6llu cycles\n",
                static_cast<unsigned long long>(sys.now() - t0));

    // Layer 3: the classifier on one PE. The pooled map's flat order
    // is exactly the FC input vector.
    FcPartialJob fc;
    fc.weightBase = fcw;
    fc.inputBase = pool_lay.at(0, 0);
    fc.outBase = logits;
    fc.biasBase = fcb;
    fc.inputs = flat;
    fc.segLen = flat;
    fc.rowBegin = 0;
    fc.rowEnd = 16;  // padded to the out-block; extras read zero rows
    fc.outBlock = 16;
    fc.finalize = true;
    sys.pe(0).loadProgram(genFcPartial(fc));
    t0 = sys.now();
    sys.run();
    std::printf("fc    : %6llu cycles\n",
                static_cast<unsigned long long>(sys.now() - t0));

    // Verify every layer bit-for-bit.
    const bool conv_ok = conv_lay.download(sys.dram()).data ==
                         ref_conv.data;
    const bool pool_ok = pool_lay.download(sys.dram()).data ==
                         ref_pool.data;
    std::printf("\nconv matches reference: %s\n", conv_ok ? "yes" : "NO");
    std::printf("pool matches reference: %s\n", pool_ok ? "yes" : "NO");

    std::printf("\n%-6s %10s %10s\n", "class", "simulated", "reference");
    bool fc_ok = true;
    int best = 0;
    for (unsigned k = 0; k < CLASSES; ++k) {
        const Fx16 got = sys.dram().load<Fx16>(logits + 2 * k);
        // finalize applies ReLU; compare against clamped reference.
        const Fx16 want = reluFx(ref_out[k]);
        std::printf("%-6u %10d %10d\n", k, got, want);
        fc_ok = fc_ok && got == want;
        if (got > sys.dram().load<Fx16>(logits + 2 * best))
            best = static_cast<int>(k);
    }
    std::printf("\npredicted class: %d\n", best);
    std::printf("fc matches reference: %s\n", fc_ok ? "yes" : "NO");
    return conv_ok && pool_ok && fc_ok ? 0 : 1;
}
